"""Concurrency tests for the hitlist serving layer.

Readers hammer point/prefix queries while the publisher swaps in new
generations; every recorded answer must be consistent with exactly one
published snapshot generation (no torn reads), and readers must keep making
progress while a publish is in flight.  All synchronisation is explicit
(events, conditions, barriers) -- no sleeps, so the tests are deterministic
and fast on any machine.
"""

from __future__ import annotations

import threading

import pytest

from repro.addr.address import IPv6Address
from repro.addr.prefix import IPv6Prefix
from repro.serving import HitlistServer, NoPublishedSnapshot, ServingError

SCENARIO = dict(scale="tiny", seed=7)
FIRST_DAY = 25  # the tiny tier's run-up horizon
NUM_READERS = 4
PUBLISH_DAYS = [26, 27, 28]
#: Queries every reader must answer while each publish is held in flight.
MIN_PROGRESS = 3


def _query_mix(snapshot):
    """A deterministic mix of hits, misses and prefixes for the readers."""
    values = snapshot._values
    addresses = [values[0], values[len(values) // 2], values[-1], values[0] ^ 0xDEAD]
    prefixes = [
        IPv6Prefix.of(IPv6Address(values[0]), 32),
        IPv6Prefix.of(IPv6Address(values[len(values) // 2]), 48),
        IPv6Prefix.of(IPv6Address(values[-1]), 64),
    ]
    return addresses, prefixes


class Readers:
    """A pool of reader threads recording (generation, query, answer) triples."""

    def __init__(self, server: HitlistServer, num_readers: int = NUM_READERS):
        self.server = server
        self.stop = threading.Event()
        self.start_barrier = threading.Barrier(num_readers + 1)
        self.cond = threading.Condition()
        self.progress = [0] * num_readers
        self.records: list[list[tuple]] = [[] for _ in range(num_readers)]
        self.errors: list[BaseException] = []
        self.threads = [
            threading.Thread(target=self._run, args=(i,), daemon=True)
            for i in range(num_readers)
        ]

    def _run(self, index: int) -> None:
        try:
            self.start_barrier.wait(timeout=60)
            addresses, prefixes = _query_mix(self.server.current)
            step = 0
            while not self.stop.is_set():
                # Capture the published snapshot exactly once; everything in
                # this iteration must come from that one generation.
                snapshot = self.server.current
                address = addresses[(index + step) % len(addresses)]
                point = snapshot.point_query(address)
                prefix = prefixes[(index + step) % len(prefixes)]
                subset = snapshot.prefix_query(prefix)
                self.records[index].append(
                    (
                        snapshot.generation,
                        snapshot.day,
                        address,
                        point,
                        prefix,
                        len(subset),
                        subset.num_responsive(),
                    )
                )
                step += 1
                with self.cond:
                    self.progress[index] += 1
                    self.cond.notify_all()
        except BaseException as error:  # pragma: no cover - failure reporting
            self.errors.append(error)
            with self.cond:
                self.cond.notify_all()

    def start(self) -> None:
        for thread in self.threads:
            thread.start()
        self.start_barrier.wait(timeout=60)

    def finish(self) -> None:
        self.stop.set()
        with self.cond:
            self.cond.notify_all()
        for thread in self.threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in self.threads)
        assert not self.errors, self.errors


class PublishGate:
    """Validate-hook that holds each publish until every reader progressed.

    The hook runs after the next generation is fully built but *before* the
    atomic swap -- exactly the window in which readers must still be served
    from the previous generation.  Requiring every reader to advance by
    ``MIN_PROGRESS`` queries inside that window proves reads never block on
    a publish, with no sleeps involved.
    """

    def __init__(self):
        self.readers: Readers | None = None
        self.observed: list[tuple[int, bool]] = []

    def __call__(self, snapshot) -> None:
        if self.readers is None:  # the bootstrap publish has no readers yet
            return
        readers = self.readers
        with readers.cond:
            baseline = list(readers.progress)
            progressed = readers.cond.wait_for(
                lambda: readers.errors
                or all(
                    now >= before + MIN_PROGRESS
                    for now, before in zip(readers.progress, baseline)
                ),
                timeout=60,
            )
        self.observed.append((snapshot.generation, progressed))


@pytest.fixture(scope="module")
def published_run():
    """One server, publishes under reader load, plus the reader records."""
    gate = PublishGate()
    server = HitlistServer.from_scenario("baseline", validate_hook=gate, **SCENARIO)
    server.publish_day(FIRST_DAY)
    readers = Readers(server)
    gate.readers = readers
    readers.start()
    for day in PUBLISH_DAYS:
        server.publish_day(day)
    readers.finish()
    return server, readers, gate


class TestConcurrentReads:
    def test_no_reader_errors_and_all_generations_valid(self, published_run):
        server, readers, _ = published_run
        published = set(server.published_generations)
        seen = {record[0] for reader in readers.records for record in reader}
        assert seen <= published
        # Readers started on generation 1 and the publisher went to 4.
        assert published == {1, 2, 3, 4}

    def test_every_answer_consistent_with_one_generation(self, published_run):
        """No torn reads: each recorded answer equals a recomputation against
        the (immutable) snapshot of the generation the reader observed."""
        server, readers, _ = published_run
        day_of = {g: server.snapshot(g).day for g in server.published_generations}
        for reader in readers.records:
            for generation, day, address, point, prefix, count, responsive in reader:
                assert day == day_of[generation]
                snapshot = server.snapshot(generation)
                expected = snapshot.point_query(address)
                assert point == expected
                subset = snapshot.prefix_query(prefix)
                assert (count, responsive) == (len(subset), subset.num_responsive())

    def test_point_answers_are_internally_consistent(self, published_run):
        """Every answer names the generation/day of the snapshot it came from."""
        _, readers, _ = published_run
        for reader in readers.records:
            for generation, day, _, point, *_ in reader:
                assert point.generation == generation
                assert point.day == day

    def test_readers_progress_during_inflight_publish(self, published_run):
        """While each publish was held before its swap, every reader kept
        answering queries -- reads never block on a publish."""
        _, readers, gate = published_run
        assert [g for g, _ in gate.observed] == [2, 3, 4]
        assert all(progressed for _, progressed in gate.observed)
        assert all(len(reader) >= MIN_PROGRESS for reader in readers.records)

    def test_snapshots_match_service_history(self, published_run):
        """Generation g serves exactly the data of service.history[day(g)]."""
        server, _, _ = published_run
        for generation in server.published_generations:
            snapshot = server.snapshot(generation)
            daily = server.service.history[snapshot.day]
            assert snapshot.num_addresses == len(daily.hitlist)
            assert snapshot.num_scan_targets == daily.num_scan_targets
            assert snapshot.num_responsive() == daily.count_responsive()
            for protocol in snapshot.protocols:
                assert snapshot.num_responsive(protocol) == daily.count_responsive(
                    protocol
                )


class TestAsyncPublish:
    def test_background_publishes_in_order(self):
        server = HitlistServer.from_scenario("baseline", **SCENARIO)
        with server:
            futures = [
                server.publish_day_async(day) for day in (FIRST_DAY, FIRST_DAY + 1)
            ]
            snapshots = [future.result(timeout=120) for future in futures]
        assert [s.generation for s in snapshots] == [1, 2]
        assert [s.day for s in snapshots] == [FIRST_DAY, FIRST_DAY + 1]
        assert server.current is snapshots[-1]

    def test_readers_during_background_publish(self):
        """A reader sampling mid-build sees the old generation, never a torn
        or partial one; after the future resolves it sees the new one."""
        release = threading.Event()
        building = threading.Event()

        def hold(snapshot):
            if snapshot.generation == 2:
                building.set()
                assert release.wait(timeout=60)

        server = HitlistServer.from_scenario("baseline", validate_hook=hold, **SCENARIO)
        with server:
            first = server.publish_day(FIRST_DAY)
            future = server.publish_day_async(FIRST_DAY + 1)
            assert building.wait(timeout=120)
            # Generation 2 is fully built but unswapped: reads still hit 1.
            assert server.current is first
            assert server.point_query(first._values[0]).generation == 1
            release.set()
            second = future.result(timeout=120)
        assert server.current is second
        assert second.generation == 2


class TestServerEdges:
    def test_query_before_first_publish_raises(self):
        server = HitlistServer.from_scenario("baseline", **SCENARIO)
        with pytest.raises(NoPublishedSnapshot):
            server.current
        with pytest.raises(NoPublishedSnapshot):
            server.point_query("2001:db8::1")
        assert server.generation == 0

    def test_unknown_generation_raises(self):
        server = HitlistServer.from_scenario("baseline", **SCENARIO)
        server.publish_day(FIRST_DAY)
        with pytest.raises(ServingError, match="generation 9"):
            server.snapshot(9)

    def test_stats_count_queries(self):
        server = HitlistServer.from_scenario("baseline", **SCENARIO)
        snapshot = server.publish_day(FIRST_DAY)
        server.point_query(snapshot._values[0])
        server.point_query(snapshot._values[0] ^ 1)
        server.prefix_query(IPv6Prefix.of(IPv6Address(snapshot._values[0]), 48))
        server.download()
        stats = server.stats()
        assert stats["queries"] == {"point": 2, "prefix": 1, "as": 0, "download": 1}
        assert stats["queries_total"] == 4
        assert stats["generation"] == 1
        assert stats["published_days"] == [FIRST_DAY]
