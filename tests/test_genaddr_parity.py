"""Seeded parity of the batch generation pipeline vs the scalar reference.

Both :class:`GenerationPipeline` engines consume the pipeline random stream
identically (shared per-AS sub-seed draws, index-based capping samples), so
candidate sets and per-AS reports must be bit-identical for any seed.  Probe
outcomes are asserted on a fully deterministic Internet (no loss, no ICMP
rate limiting, no stochastic anomaly regions), where responsiveness is a
pure function of (target, protocol, day) and the batch engine's single
``probe_batch`` sweep must agree with the scalar per-protocol sweeps.

One AS is scripted so that *all* of its seeds fall inside a detected aliased
prefix: its generated candidates must be filtered by the cached APD verdicts
in both engines, without re-probing any prefix.
"""

import pytest

from repro.addr.address import IPv6Address
from repro.addr.prefix import IPv6Prefix
from repro.core.apd import AliasedPrefixDetector
from repro.genaddr import GenerationPipeline
from repro.netmodel import InternetConfig, SimulatedInternet
from repro.netmodel.services import HostRole

#: Deterministic small Internet: probe outcomes are pure functions of
#: (target, protocol, day), the premise of exact cross-engine probe parity.
DETERMINISTIC_CONFIG = InternetConfig(
    seed=7,
    num_ases=50,
    base_hosts_per_allocation=10,
    max_hosts_per_allocation=180,
    study_days=20,
    packet_loss=0.0,
    icmp_rate_limited_share=0.0,
    stochastic_anomalies=False,
)

MIN_SEEDS_PER_AS = 60
BUDGET_PER_AS = 150
PIPELINE_SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def parity_setup():
    """(internet, seed list incl. the aliased-prefix AS, APD result, region)."""
    internet = SimulatedInternet(DETERMINISTIC_CONFIG)
    region = internet.aliased_regions[0]
    region_asn = internet.asn_of(IPv6Address(region.prefix.network | 1))
    assert region_asn is not None
    seeds = [
        a
        for a in internet.addresses_by_role(
            HostRole.WEB_SERVER, HostRole.DNS_SERVER, HostRole.MAIL_SERVER
        )
        if not internet.is_aliased_truth(a) and internet.asn_of(a) != region_asn
    ]
    # An AS whose seeds ALL fall inside one aliased prefix: upstream seed
    # curation missed them, the candidate filter must catch the fallout.
    invaded = [
        IPv6Address(region.prefix.network | (0x100 + i))
        for i in range(MIN_SEEDS_PER_AS + 40)
    ]
    seeds = seeds + invaded
    apd_result = AliasedPrefixDetector(internet, seed=13).run(seeds, day=0)
    assert apd_result.is_aliased(invaded[0]), IPv6Prefix.of(invaded[0].value, 64)
    return internet, seeds, apd_result, region, region_asn


def _run_engines(parity_setup, seed):
    internet, seeds, apd_result, _, _ = parity_setup
    reports = {}
    for engine in ("reference", "batch"):
        pipeline = GenerationPipeline(
            internet,
            min_seeds_per_as=MIN_SEEDS_PER_AS,
            generation_budget_per_as=BUDGET_PER_AS,
            seed=seed,
            engine=engine,
        )
        reports[engine] = pipeline.run(seeds, day=0, probe=True, apd_result=apd_result)
    return reports["reference"], reports["batch"]


@pytest.fixture(scope="module")
def engine_reports(parity_setup):
    return {seed: _run_engines(parity_setup, seed) for seed in PIPELINE_SEEDS}


class TestGenerationParity:
    def test_candidate_sets_identical(self, engine_reports):
        for seed, (reference, batch) in engine_reports.items():
            for tool in ("entropy_ip", "6gen"):
                assert set(a.value for a in reference.candidates[tool]) == set(
                    batch.candidate_batch(tool).to_ints()
                ), (seed, tool)
                assert reference.generated_count(tool) == batch.generated_count(tool)

    def test_per_as_reports_identical(self, engine_reports):
        for seed, (reference, batch) in engine_reports.items():
            ref_rows = [
                (r.asn, r.tool, r.seeds, [a.value for a in r.generated])
                for r in reference.per_as
            ]
            batch_rows = [
                (r.asn, r.tool, r.seeds, r.generated_batch.to_ints())
                for r in batch.per_as
            ]
            assert ref_rows == batch_rows, seed

    def test_responsive_sets_and_rates_identical(self, engine_reports):
        for seed, (reference, batch) in engine_reports.items():
            for tool in ("entropy_ip", "6gen"):
                assert reference.responsive_any(tool) == batch.responsive_any(tool), (
                    seed,
                    tool,
                )
                assert reference.response_rate(tool) == pytest.approx(
                    batch.response_rate(tool), abs=0
                )
                for protocol, addresses in reference.responsive[tool].items():
                    assert addresses == batch.responsive[tool][protocol], (seed, tool, protocol)

    def test_protocol_combinations_identical(self, engine_reports):
        for seed, (reference, batch) in engine_reports.items():
            for tool in ("entropy_ip", "6gen"):
                assert reference.protocol_combination_shares(
                    tool
                ) == batch.protocol_combination_shares(tool), (seed, tool)

    def test_aliased_as_generates_but_yields_no_candidates(
        self, parity_setup, engine_reports
    ):
        _, _, apd_result, region, region_asn = parity_setup
        for seed, (reference, batch) in engine_reports.items():
            for report in (reference, batch):
                per_as = [
                    r
                    for r in report.per_as
                    if r.asn == region_asn and r.generated_count > 0
                ]
                assert per_as, (seed, "the aliased AS must still generate")
                for tool in ("entropy_ip", "6gen"):
                    assert not any(
                        value in region.prefix
                        for value in report.candidate_batch(tool).to_addresses()
                    ), (seed, tool, "aliased candidates must be filtered")

    def test_no_candidate_is_aliased(self, parity_setup, engine_reports):
        _, _, apd_result, _, _ = parity_setup
        for seed, (_, batch) in engine_reports.items():
            for tool in ("entropy_ip", "6gen"):
                candidates = batch.candidate_batch(tool)
                if len(candidates):
                    assert not apd_result.is_aliased_batch(candidates).any(), (seed, tool)


class TestEngineContract:
    def test_engine_synonyms(self, parity_setup):
        internet, *_ = parity_setup
        for name, canonical in (
            ("vectorized", "batch"),
            ("scalar", "reference"),
            ("batch", "batch"),
            ("reference", "reference"),
        ):
            assert GenerationPipeline(internet, engine=name).engine == canonical
        with pytest.raises(ValueError):
            GenerationPipeline(internet, engine="turbo")

    def test_seeds_by_as_partitions_identically(self, parity_setup):
        from repro.addr.batch import AddressBatch

        internet, seeds, *_ = parity_setup
        reference = GenerationPipeline(internet, min_seeds_per_as=MIN_SEEDS_PER_AS, seed=5)
        batch = GenerationPipeline(internet, min_seeds_per_as=MIN_SEEDS_PER_AS, seed=5)
        scalar_groups = reference.seeds_by_as(seeds)
        batch_groups = batch.seeds_by_as_batch(AddressBatch.from_addresses(seeds))
        assert set(scalar_groups) == set(batch_groups)
        for asn, members in scalar_groups.items():
            assert [a.value for a in members] == batch_groups[asn].to_ints(), asn
