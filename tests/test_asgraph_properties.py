"""Property-based tests of the AS graph and valley-free routing.

Hypothesis samples routed-topology configurations (transit count, IXPs,
vantages, filtering, churn) over small AS registries and asserts the routing
invariants the probe path relies on: every selected path is valley-free and
loop-free, path matrices are consistent with the selected paths, churn never
flips a destination's filtered status, and two builds from equal inputs are
bit-identical.
"""

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netmodel.asgraph import REGIONS, build_asgraph, single_homed_graph
from repro.netmodel.asregistry import ASRegistry
from repro.netmodel.config import InternetConfig
from repro.netmodel.routing import RoutingModel, is_valley_free


def build_routing(
    seed: int,
    num_transits: int,
    num_ixps: int = 0,
    num_vantages: int = 1,
    filtered_region: int = -1,
    churn: float = 0.0,
) -> RoutingModel:
    """A routing model over a small registry, fully determined by the args."""
    config = InternetConfig(
        seed=seed,
        num_ases=36,
        num_transit_ases=num_transits,
        num_ixps=num_ixps,
        num_vantages=num_vantages,
        filtered_region=filtered_region,
        bgp_churn_rate=churn,
    )
    registry = ASRegistry.build(config.num_ases, random.Random(seed))
    graph = build_asgraph(registry, config, random.Random(seed ^ 1))
    return RoutingModel(graph, config)


#: Routed (non-degenerate) configuration draws.
routed_cases = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16 - 1),
        "num_transits": st.integers(1, 6),
        "num_ixps": st.integers(0, 3),
        "num_vantages": st.integers(1, 3),
        "filtered_region": st.integers(-1, len(REGIONS) - 1),
        "churn": st.sampled_from([0.0, 0.5]),
    }
)


@settings(max_examples=20, deadline=None)
@given(case=routed_cases)
def test_selected_paths_are_valley_free_and_loop_free(case):
    routing = build_routing(**case)
    graph = routing.graph
    for vantage, vantage_asn in enumerate(routing.vantage_asns):
        for row, dest in enumerate(routing.dest_asns):
            for day in (0, 1):
                path = routing.as_path(row, day, vantage)
                if not path:
                    continue
                assert path[0] == vantage_asn
                assert path[-1] == dest
                assert len(set(path)) == len(path), f"loop in {path}"
                assert is_valley_free(graph, path), f"valley in {path}"


@settings(max_examples=20, deadline=None)
@given(case=routed_cases)
def test_path_matrices_are_consistent_with_selected_paths(case):
    routing = build_routing(**case)
    for vantage in range(len(routing.vantage_asns)):
        view = routing.day_view(0, vantage)
        for row in range(len(routing.dest_asns)):
            path = routing.as_path(row, 0, vantage)
            assert view.hops[row] == max(0, len(path) - 1)
            if path:
                filtered = routing.filter_cut(path) is not None
                assert bool(view.filtered[row]) == filtered
                assert 0.0 <= view.delivery[row] <= 1.0
                assert 0.0 <= view.icmp_allowance[row] <= 1.0


@settings(max_examples=15, deadline=None)
@given(case=routed_cases)
def test_churn_never_flips_the_filtered_status(case):
    routing = build_routing(**{**case, "churn": 0.5})
    for vantage in range(len(routing.vantage_asns)):
        day0 = routing.day_view(0, vantage)
        for day in (1, 2, 5):
            view = routing.day_view(day, vantage)
            assert np.array_equal(view.filtered, day0.filtered)
            assert np.array_equal(view.hops > 0, day0.hops > 0)


@settings(max_examples=15, deadline=None)
@given(case=routed_cases)
def test_two_builds_are_bit_identical(case):
    a, b = build_routing(**case), build_routing(**case)
    assert [(e.a, e.b, e.kind, e.congestion) for e in a.graph.edges] == [
        (e.a, e.b, e.kind, e.congestion) for e in b.graph.edges
    ]
    assert a.vantage_asns == b.vantage_asns
    assert a.dest_asns == b.dest_asns
    for vantage in range(len(a.vantage_asns)):
        for day in (0, 3):
            va, vb = a.day_view(day, vantage), b.day_view(day, vantage)
            assert np.array_equal(va.filtered, vb.filtered)
            assert np.array_equal(va.delivery, vb.delivery)
            assert np.array_equal(va.icmp_allowance, vb.icmp_allowance)
            assert np.array_equal(va.hops, vb.hops)
        for row in range(len(a.dest_asns)):
            assert a.as_path(row, 1, vantage) == b.as_path(row, 1, vantage)


@settings(max_examples=15, deadline=None)
@given(case=routed_cases)
def test_adjacency_is_symmetric_and_reversed_paths_stay_valley_free(case):
    """Peering is symmetric, down reverses to up, and a reversed valley-free
    path is still valley-free (``up* peer? down*`` is shape-symmetric)."""
    routing = build_routing(**case)
    graph = routing.graph
    for edge in graph.edges:
        forward = graph.relationship(edge.a, edge.b)
        backward = graph.relationship(edge.b, edge.a)
        if forward == "peer":
            assert backward == "peer"
        else:
            assert {forward, backward} == {"up", "down"}
    for row in range(0, len(routing.dest_asns), 7):
        path = routing.as_path(row, 0)
        if path:
            assert is_valley_free(graph, tuple(reversed(path)))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16 - 1))
def test_degenerate_graph_is_inactive_and_star_shaped(seed):
    config = InternetConfig(seed=seed, num_ases=36)
    registry = ASRegistry.build(config.num_ases, random.Random(seed))
    graph = build_asgraph(registry, config, random.Random(seed ^ 1))
    assert graph.degenerate
    assert len(graph.vantage_asns) == 1
    vantage = graph.vantage_asns[0]
    assert sorted(graph.customers_of(vantage)) == sorted(graph.stub_asns)
    assert all(edge.congestion == 0.0 for edge in graph.edges)
    routing = RoutingModel(graph, config)
    assert not routing.active
    assert not routing.has_filtering
    assert not routing.has_churn
    # Identical to a directly constructed star.
    star = single_homed_graph(registry)
    assert sorted(star.nodes) == sorted(graph.nodes)


@settings(max_examples=10, deadline=None)
@given(case=routed_cases, day=st.integers(0, 40))
def test_scalar_and_batch_churn_draws_agree(case, day):
    """The scalar churn predicate matches the vectorized day-view plane."""
    routing = build_routing(**{**case, "churn": 0.5})
    n = len(routing.dest_asns)
    view = routing.day_view(day)
    primary = routing.day_view(0)  # only to force both code paths to build
    del primary
    for row in range(n):
        plane = 1 if routing.uses_alternate(row, day) else 0
        path = routing.as_path(row, day)
        assert path == routing._paths[routing.resolve_vantage(None)][plane][row]
        assert view.hops[row] == max(0, len(path) - 1)
