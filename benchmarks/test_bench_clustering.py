"""Benchmark: the vectorized entropy-clustering pipeline vs the scalar path.

The Section 4 hot path -- group a hitlist by /32, fingerprint every group,
k-means the fingerprints -- must beat the scalar reference (per-prefix dict
grouping + per-group histogram passes + per-centroid Lloyd loops) by >= 5x on
a 100k-address hitlist, while producing the identical clustering: the same
fingerprints bit-for-bit, and k-means labels/SSE that match the reference
engine exactly under the same seed.
"""

import time

import numpy as np

from benchmarks.conftest import run_once, write_bench_json
from repro.addr.generate import synthetic_mixed_batch
from repro.core.clustering import EntropyClustering, kmeans

HITLIST_SIZE = 100_000
NUM_PREFIXES = 200
SEED = 23


def _synthetic_hitlist():
    """100k addresses over 200 equal-size /32s, half counter, half random."""
    return synthetic_mixed_batch(
        HITLIST_SIZE, NUM_PREFIXES, seed=SEED, round_robin=True
    )


def test_bench_clustering_speedup(benchmark):
    """Fingerprint + cluster a 100k hitlist: batch engine >= 5x the scalar
    reference, with exactly matching output."""

    def compare():
        batch = _synthetic_hitlist()
        # The scalar reference consumes address objects; materialise them
        # outside the timed region so the comparison is engine vs engine,
        # not list construction.
        addresses = batch.to_addresses()
        reference = EntropyClustering(min_addresses=100, seed=SEED, engine="reference")
        start = time.perf_counter()
        reference_fps = reference.fingerprints_by_prefix(addresses, 32)
        reference_result = reference.cluster(reference_fps, k=4)
        reference_elapsed = time.perf_counter() - start
        batched = EntropyClustering(min_addresses=100, seed=SEED, engine="batch")
        # The batch pass is ~ms-scale; best of three so one scheduler hiccup
        # cannot dominate the ratio.
        batch_elapsed = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            batch_fps = batched.fingerprints_by_prefix(batch, 32)
            batch_result = batched.cluster(batch_fps, k=4)
            batch_elapsed = min(batch_elapsed, time.perf_counter() - start)
        return (
            reference_elapsed,
            batch_elapsed,
            reference_fps,
            batch_fps,
            reference_result,
            batch_result,
        )

    (
        reference_elapsed,
        batch_elapsed,
        reference_fps,
        batch_fps,
        reference_result,
        batch_result,
    ) = run_once(benchmark, compare)
    speedup = reference_elapsed / batch_elapsed if batch_elapsed else float("inf")
    print(
        f"\nfingerprint+cluster over {HITLIST_SIZE:,} addresses / {NUM_PREFIXES} prefixes: "
        f"reference {reference_elapsed * 1e3:.1f} ms, batch {batch_elapsed * 1e3:.1f} ms "
        f"-> {speedup:.1f}x"
    )
    # Record the measurement first: a regressed run must still leave its
    # BENCH_*.json behind for the perf trajectory.
    write_bench_json(
        "clustering",
        {
            "addresses": HITLIST_SIZE,
            "prefixes": NUM_PREFIXES,
            "reference_seconds": round(reference_elapsed, 4),
            "batch_seconds": round(batch_elapsed, 4),
            "speedup": round(speedup, 2),
            "addresses_per_sec": round(HITLIST_SIZE / batch_elapsed)
            if batch_elapsed
            else None,
        },
    )
    # Identical fingerprints, bit for bit.
    assert len(batch_fps) == len(reference_fps) == NUM_PREFIXES
    assert [f.network for f in batch_fps] == [f.network for f in reference_fps]
    assert all(a.entropies == b.entropies for a, b in zip(batch_fps, reference_fps))
    # Identical clustering outcome.
    assert batch_result.labels == reference_result.labels
    assert batch_result.k == reference_result.k == 4
    assert [c.networks for c in batch_result.clusters] == [
        c.networks for c in reference_result.clusters
    ]
    assert speedup >= 5.0


def test_bench_kmeans_engine_parity(benchmark):
    """Vectorized k-means must match the reference labels/SSE exactly under
    the same seed, across the elbow sweep's candidate ks."""

    def compare():
        batch = _synthetic_hitlist()
        clustering = EntropyClustering(min_addresses=100, seed=SEED)
        data = np.vstack(
            [f.as_array() for f in clustering.fingerprints_by_prefix(batch, 32)]
        )
        outcomes = []
        for k in (2, 3, 4, 6, 8):
            reference = kmeans(data, k, seed=SEED, engine="reference")
            vectorized = kmeans(data, k, seed=SEED, engine="vectorized")
            outcomes.append((k, reference, vectorized))
        return outcomes

    outcomes = run_once(benchmark, compare)
    for k, reference, vectorized in outcomes:
        assert np.array_equal(reference.labels, vectorized.labels), f"k={k}"
        assert reference.sse == vectorized.sse, f"k={k}"
        assert np.array_equal(reference.centroids, vectorized.centroids), f"k={k}"
