"""Performance benchmarks of the core algorithmic kernels.

Unlike the per-table/figure harnesses these measure raw throughput of the
pieces a downstream user would run at much larger scale: longest-prefix
matching, entropy fingerprinting, k-means and the APD probe loop.
"""

import random

import numpy as np

from repro.addr import IPv6Prefix, PrefixTrie
from repro.addr.generate import random_address_in_prefix
from repro.core.clustering import kmeans
from repro.core.entropy import nybble_entropies
from repro.netmodel.services import Protocol


def test_bench_trie_longest_prefix_match(benchmark, ctx):
    trie = PrefixTrie()
    for i, announcement in enumerate(ctx.internet.bgp):
        trie.insert(announcement.prefix, i)
    addresses = ctx.hitlist.addresses[:5000]

    def lookups():
        return sum(1 for a in addresses if trie.lookup(a) is not None)

    hits = benchmark(lookups)
    assert hits > len(addresses) * 0.9


def test_bench_entropy_fingerprint(benchmark, ctx):
    addresses = ctx.hitlist.addresses[:2000]

    def fingerprint():
        return nybble_entropies(addresses, 9, 32)

    entropies = benchmark(fingerprint)
    assert len(entropies) == 24


def test_bench_kmeans(benchmark):
    rng = np.random.default_rng(0)
    data = np.vstack([rng.normal(i % 4, 0.1, size=(100, 24)) for i in range(8)])

    def cluster():
        return kmeans(data, 6, seed=1, restarts=3)

    result = benchmark(cluster)
    assert result.k == 6


def test_bench_probe_throughput(benchmark, ctx):
    internet = ctx.internet
    rng = random.Random(5)
    region = internet.aliased_regions[0]
    targets = [random_address_in_prefix(region.prefix, rng) for _ in range(500)]

    def probe_batch():
        return sum(
            1 for t in targets if internet.probe(t, Protocol.ICMP, day=0) is not None
        )

    responded = benchmark(probe_batch)
    assert responded > 400
