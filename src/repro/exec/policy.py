"""The unified execution policy: one object selecting *how* an engine runs.

Every vectorised subsystem historically took a bare ``engine="batch"`` string.
That spelling selects an implementation but cannot say anything about *scale*:
chunk sizes for out-of-core streaming, worker counts for shard-parallel
execution, or whether batch columns live in RAM or behind a memory-mapped
file.  :class:`ExecutionPolicy` packages all of it into one frozen value that
is accepted everywhere ``engine=`` is accepted today, and
:func:`resolve_policy` is the single canonical coercion point:

* ``None`` resolves to the caller's fast engine with in-RAM, single-worker,
  unchunked execution -- exactly the historical default.
* An :class:`ExecutionPolicy` passes through with its engine name normalised
  to the caller's canonical pair (any synonym from
  :mod:`repro.core.engines` is accepted, unknown names raise the same
  every-synonym-listing error as always).
* A bare string remains supported as a deprecated spelling: it resolves to a
  plain in-RAM policy and emits a :class:`DeprecationWarning` -- this function
  is the one place in the tree where that deprecation lives.

Policies are frozen and hashable, so they can ride inside scenario caches and
hypothesis examples just like :class:`~repro.scenarios.Scenario`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

#: Accepted backing stores for streamed batch columns.
STORAGE_KINDS = ("ram", "memmap")

#: Accepted shard keys for multi-worker fan-out.
SHARD_KEYS = ("prefix", "rows")

#: Chunk size used when a policy requests sharding or memmap storage without
#: pinning ``chunk_rows`` explicitly.
DEFAULT_CHUNK_ROWS = 65_536


@dataclass(frozen=True, slots=True)
class ExecutionPolicy:
    """How an engine executes: implementation, chunking, workers, storage.

    ``engine`` names the implementation family (any synonym from
    :mod:`repro.core.engines`); the remaining fields only apply to the fast
    columnar engines:

    * ``chunk_rows`` -- rows materialised per streaming step (``None`` keeps
      the historical whole-batch-at-once behaviour),
    * ``workers`` -- processes to shard the work over (1 = in-process),
    * ``storage`` -- ``"ram"`` or ``"memmap"`` backing for streamed columns,
    * ``shard_by`` -- ``"prefix"`` cuts shards on FlatLPM disjoint-interval
      boundaries; ``"rows"`` cuts plain contiguous row ranges.
    """

    engine: str = "batch"
    chunk_rows: int | None = None
    workers: int = 1
    storage: str = "ram"
    shard_by: str = "prefix"

    def __post_init__(self) -> None:
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError(f"chunk_rows must be positive, got {self.chunk_rows}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.storage not in STORAGE_KINDS:
            raise ValueError(
                f"unknown storage: {self.storage!r} (expected one of {list(STORAGE_KINDS)})"
            )
        if self.shard_by not in SHARD_KEYS:
            raise ValueError(
                f"unknown shard_by: {self.shard_by!r} (expected one of {list(SHARD_KEYS)})"
            )

    @property
    def is_streaming(self) -> bool:
        """Does this policy engage the out-of-core / multi-core tier?

        True when any knob departs from the plain in-RAM single-pass default;
        the fast engines then route through the chunked/sharded kernels in
        :mod:`repro.exec` instead of the one-shot batch path.
        """
        return (
            self.chunk_rows is not None
            or self.workers > 1
            or self.storage == "memmap"
        )

    @property
    def effective_chunk_rows(self) -> int | None:
        """``chunk_rows``, defaulted when streaming is implied another way."""
        if self.chunk_rows is not None:
            return self.chunk_rows
        if self.is_streaming:
            return DEFAULT_CHUNK_ROWS
        return None


def resolve_policy(
    engine: "ExecutionPolicy | str | None" = None,
    *,
    fast: str = "batch",
    reference: str = "reference",
) -> ExecutionPolicy:
    """Coerce an ``engine=`` argument into a canonical :class:`ExecutionPolicy`.

    The one resolution path shared by every entry point: ``fast`` and
    ``reference`` are the calling layer's canonical engine names (exactly as
    for :func:`repro.core.engines.canonical_engine`).  ``None`` means "the
    default fast engine, plain in-RAM execution"; a policy passes through
    with its engine name normalised; a bare string is the deprecated legacy
    spelling and resolves to a plain policy after a :class:`DeprecationWarning`.
    """
    # Imported lazily: repro.core's vectorised modules themselves import
    # repro.exec at module level, so a top-level import here would be circular.
    from repro.core.engines import canonical_engine

    if engine is None:
        return ExecutionPolicy(engine=fast)
    if isinstance(engine, ExecutionPolicy):
        name = canonical_engine(engine.engine, fast, reference)
        if name == engine.engine:
            return engine
        return dataclasses.replace(engine, engine=name)
    warnings.warn(
        "bare engine strings are deprecated; pass "
        "repro.exec.ExecutionPolicy(engine=...) (or omit the argument for "
        "the default fast engine). Bare strings remain supported.",
        DeprecationWarning,
        stacklevel=2,
    )
    return ExecutionPolicy(engine=canonical_engine(engine, fast, reference))
