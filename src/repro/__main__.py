"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                      # show all experiment ids
    python -m repro run fig7                  # run one experiment (default scale)
    python -m repro run table2 --scale test   # faster, smaller configuration
    python -m repro run-all --scale test      # everything over one shared context
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import EXPERIMENTS, run_all, run_experiment
from repro.experiments.context import (
    DEFAULT_EXPERIMENT_CONFIG,
    TEST_EXPERIMENT_CONFIG,
    ExperimentContext,
)

_SCALES = {"default": DEFAULT_EXPERIMENT_CONFIG, "test": TEST_EXPERIMENT_CONFIG}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Clusters in the Expanse' (IMC 2018): run the paper's experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all experiment ids")

    run_parser = subparsers.add_parser("run", help="run a single experiment and print its report")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run_parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="default", help="pipeline scale to use"
    )

    all_parser = subparsers.add_parser("run-all", help="run every experiment over one shared context")
    all_parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="default", help="pipeline scale to use"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    config = _SCALES[args.scale]
    if args.command == "run":
        outcome = run_experiment(args.experiment, config=config)
        print(f"== {outcome.experiment_id} ==")
        print(outcome.report)
        return 0
    # run-all
    ctx = ExperimentContext(config)
    outcomes = run_all(ctx)
    for experiment_id, outcome in outcomes.items():
        print(f"\n== {experiment_id} ==")
        print(outcome.report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
