"""IPv6 address primitives.

The paper works on IPv6 addresses as sequences of 32 *nybbles* (hex
characters), e.g. for entropy fingerprints (Section 4) and for detecting
SLAAC/EUI-64 addresses (``ff:fe`` in the interface identifier, Section 3).

We keep addresses as plain 128-bit integers wrapped in a small immutable
class.  The standard library :mod:`ipaddress` module is used only for parsing
and for producing canonical textual output; all hot paths operate on integers.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Iterable, Sequence

#: Number of nybbles (hex characters) in a full IPv6 address.
NYBBLES = 32

#: Number of bits in an IPv6 address.
BITS = 128

#: Mask covering the full 128-bit address space.
FULL_MASK = (1 << BITS) - 1

#: Mask of the low 64 bits (the interface identifier).
LO_MASK = (1 << 64) - 1

#: Hexadecimal alphabet used for nybble representations.
HEX_ALPHABET = "0123456789abcdef"


def _to_int(value: "IPv6Address | int | str") -> int:
    """Coerce *value* to a 128-bit integer address."""
    if isinstance(value, IPv6Address):
        return value.value
    if isinstance(value, int):
        if not 0 <= value <= FULL_MASK:
            raise ValueError(f"address integer out of range: {value!r}")
        return value
    if isinstance(value, str):
        return int(ipaddress.IPv6Address(value))
    raise TypeError(f"cannot interpret {type(value).__name__} as an IPv6 address")


@dataclass(frozen=True, order=True, slots=True)
class IPv6Address:
    """A single IPv6 address stored as a 128-bit integer.

    The class is hashable and totally ordered so that addresses can be used in
    sets, sorted hitlists and numpy conversions without friction.

    Parameters
    ----------
    value:
        The 128-bit integer value of the address.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= FULL_MASK:
            raise ValueError(f"address integer out of range: {self.value!r}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        """Parse a textual IPv6 address (any RFC 5952 form)."""
        return cls(int(ipaddress.IPv6Address(text)))

    @classmethod
    def from_nybbles(cls, nybbles: Sequence[str] | str) -> "IPv6Address":
        """Build an address from 32 hex characters (most significant first)."""
        joined = "".join(nybbles)
        if len(joined) != NYBBLES:
            raise ValueError(f"expected {NYBBLES} nybbles, got {len(joined)}")
        return cls(int(joined, 16))

    # -- representations ---------------------------------------------------

    @property
    def exploded(self) -> str:
        """Fully expanded lowercase representation (8 groups of 4 nybbles)."""
        hexstr = self.nybbles
        return ":".join(hexstr[i : i + 4] for i in range(0, NYBBLES, 4))

    @property
    def compressed(self) -> str:
        """Canonical RFC 5952 compressed representation."""
        return str(ipaddress.IPv6Address(self.value))

    @property
    def nybbles(self) -> str:
        """The address as a string of 32 hex characters."""
        return f"{self.value:032x}"

    def nybble(self, index: int) -> int:
        """Return nybble *index* (1-based, as in the paper's Eq. 2) as an int.

        Nybble 1 is the most significant hex character, nybble 32 the least
        significant one.
        """
        if not 1 <= index <= NYBBLES:
            raise IndexError(f"nybble index out of range: {index}")
        shift = 4 * (NYBBLES - index)
        return (self.value >> shift) & 0xF

    # -- structure ---------------------------------------------------------

    @property
    def network_part(self) -> int:
        """The upper 64 bits (network identifier)."""
        return self.value >> 64

    @property
    def iid(self) -> int:
        """The lower 64 bits (interface identifier)."""
        return self.value & ((1 << 64) - 1)

    @property
    def is_slaac_eui64(self) -> bool:
        """True if the IID carries the ``ff:fe`` EUI-64 marker (bytes 11-12 of the IID)."""
        return is_slaac_eui64(self.value)

    @property
    def iid_hamming_weight(self) -> int:
        """Number of bits set in the interface identifier.

        The paper (Section 8) uses the IID hamming weight to infer the presence
        of clients with privacy extensions: pseudo-random IIDs have a weight
        close to 32, whereas low-numbered server addresses have small weights.
        """
        return self.iid.bit_count()

    def mac_vendor_oui(self) -> int | None:
        """Extract the 24-bit vendor OUI from an EUI-64 IID, or None.

        The universal/local bit is flipped back as per RFC 4291 Appendix A.
        """
        if not self.is_slaac_eui64:
            return None
        iid = self.iid
        oui = (iid >> 40) & 0xFFFFFF
        return oui ^ 0x020000

    # -- arithmetic --------------------------------------------------------

    def __int__(self) -> int:
        return self.value

    def __add__(self, offset: int) -> "IPv6Address":
        return IPv6Address((self.value + offset) & FULL_MASK)

    def __sub__(self, other: "IPv6Address | int") -> int:
        return self.value - _to_int(other)

    def __str__(self) -> str:
        return self.compressed

    def __repr__(self) -> str:
        return f"IPv6Address({self.compressed!r})"


def parse_address(value: "IPv6Address | int | str") -> IPv6Address:
    """Coerce strings, integers or addresses to :class:`IPv6Address`."""
    if isinstance(value, IPv6Address):
        return value
    return IPv6Address(_to_int(value))


def nybbles_of(value: "IPv6Address | int | str") -> str:
    """Return the 32-character nybble string of an address-like value."""
    return f"{_to_int(value):032x}"


def hamming_weight(value: "IPv6Address | int | str") -> int:
    """Number of bits set across the full 128-bit address."""
    return _to_int(value).bit_count()


def iid_hamming_weight(value: "IPv6Address | int | str") -> int:
    """Number of bits set in the 64-bit interface identifier."""
    return (_to_int(value) & ((1 << 64) - 1)).bit_count()


def is_slaac_eui64(value: "IPv6Address | int | str") -> bool:
    """True when the interface identifier embeds the EUI-64 ``ff:fe`` marker.

    SLAAC EUI-64 interface identifiers are built from a MAC address by
    inserting ``0xfffe`` between the OUI and the NIC-specific bytes; the marker
    therefore sits in bits 24-39 of the IID.
    """
    iid = _to_int(value) & ((1 << 64) - 1)
    return (iid >> 24) & 0xFFFF == 0xFFFE


def addresses_to_ints(addresses: Iterable["IPv6Address | int | str"]) -> list[int]:
    """Convert an iterable of address-like values to plain integers."""
    return [_to_int(a) for a in addresses]
