"""Benchmark / regeneration harness for Table 1 (comparison with prior work)."""

from benchmarks.conftest import run_once
from repro.experiments import table1


def test_bench_table1(benchmark, ctx):
    result = run_once(benchmark, lambda: table1.run(ctx))
    print("\n" + table1.format_table(result))
    assert result.is_only_full_apd
    assert result.this_work_ases > 50
    assert result.this_work_prefixes >= result.this_work_ases
