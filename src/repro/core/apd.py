"""Multi-level aliased prefix detection (Section 5).

For every candidate prefix the detector sends 16 probes, one to a
pseudo-random address in each 4-bit subprefix (the fan-out of Table 3), on
both ICMPv6 and TCP/80.  An address counts as responsive when either protocol
answers (cross-protocol merging, Section 5.2); a prefix is labelled aliased
when all 16 fan-out addresses are responsive.  Detection runs at multiple
prefix lengths -- every length from /64 to /124 in 4-bit steps that covers
more than ``min_targets_per_prefix`` hitlist addresses, plus all /64s -- and
the final per-address classification uses longest-prefix matching over the
probed prefixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.addr.address import IPv6Address
from repro.addr.batch import AddressBatch, FlatLPM, batch_fanout_targets
from repro.addr.generate import FANOUT, fanout_targets
from repro.addr.prefix import IPv6Prefix
from repro.addr.trie import PrefixTrie
from repro.exec import (
    ExecutionPolicy,
    FanoutPlan,
    fanout_rand_chunk,
    map_shards,
    plan_chunk_spans,
    plan_chunk_spans_within,
    plan_worker_spans,
    resolve_policy,
    scratch_memmap,
)
from repro.netmodel.internet import SimulatedInternet
from repro.netmodel.services import Protocol


@dataclass(frozen=True, slots=True)
class APDConfig:
    """Parameters of the multi-level aliased prefix detection."""

    #: Prefix lengths at which hitlist addresses are aggregated (4-bit steps).
    prefix_lengths: tuple[int, ...] = tuple(range(64, 125, 4))
    #: Only prefixes with more than this many hitlist addresses are probed ...
    min_targets_per_prefix: int = 100
    #: ... except /64 prefixes, which are always probed ("full analysis of all
    #: known /64 prefixes").
    always_probe_64: bool = True
    #: Protocols whose responses are merged (Section 5.2).
    protocols: tuple[Protocol, ...] = (Protocol.ICMP, Protocol.TCP80)
    #: Number of fan-out probes per prefix and protocol.
    fanout: int = FANOUT
    #: Number of responsive fan-out addresses required to call a prefix aliased.
    aliased_threshold: int = FANOUT


class PrefixProbeOutcome:
    """Probe outcome for one candidate prefix on one day.

    Two storage forms share one read API: the scalar engine fills
    ``branch_responses`` (one set of answering protocols per fan-out branch)
    probe by probe, while the batch engine stores a slice of the
    ``probe_batch`` responsiveness matrix and materialises targets/sets only
    when a consumer asks for them -- on the hot path (`is_aliased`,
    `responsive_branches`) everything stays an array reduction.
    """

    __slots__ = (
        "prefix",
        "day",
        "_targets",
        "_targets_batch",
        "_matrix",
        "_protocols",
        "_branch_responses",
        "_aliased",
    )

    def __init__(
        self,
        prefix: IPv6Prefix,
        day: int,
        targets: list[IPv6Address] | None = None,
        branch_responses: list[set[Protocol]] | None = None,
    ):
        self.prefix = prefix
        self.day = day
        self._targets = [] if targets is None else targets
        self._targets_batch: AddressBatch | None = None
        self._matrix: np.ndarray | None = None
        self._protocols: tuple[Protocol, ...] = ()
        self._branch_responses = [] if branch_responses is None else branch_responses
        self._aliased: bool | None = None

    @classmethod
    def from_matrix(
        cls,
        prefix: IPv6Prefix,
        day: int,
        targets: AddressBatch,
        matrix: np.ndarray,
        protocols: tuple[Protocol, ...],
    ) -> "PrefixProbeOutcome":
        """Batch-engine constructor: a (branch x protocol) boolean matrix."""
        outcome = cls(prefix=prefix, day=day)
        outcome._targets = None
        outcome._targets_batch = targets
        outcome._matrix = matrix
        outcome._protocols = protocols
        outcome._branch_responses = None
        return outcome

    @property
    def targets(self) -> list[IPv6Address]:
        """The fan-out target addresses (materialised lazily on the batch path)."""
        if self._targets is None:
            self._targets = self._targets_batch.to_addresses()
        return self._targets

    @targets.setter
    def targets(self, value: list[IPv6Address]) -> None:
        self._targets = value
        self._targets_batch = None
        self._aliased = None

    @property
    def num_targets(self) -> int:
        """Fan-out size without materialising scalar addresses."""
        if self._targets is not None:
            return len(self._targets)
        return len(self._targets_batch)

    @property
    def branch_responses(self) -> list[set[Protocol]]:
        """Per-branch (0..15) set of protocols that answered."""
        if self._branch_responses is None:
            self._branch_responses = [
                {self._protocols[j] for j in row.nonzero()[0].tolist()}
                for row in self._matrix
            ]
        return self._branch_responses

    @branch_responses.setter
    def branch_responses(self, value: list[set[Protocol]]) -> None:
        self._branch_responses = value
        self._matrix = None
        self._aliased = None

    @property
    def responsive_branches(self) -> set[int]:
        """Branch indices whose target answered on at least one protocol."""
        if self._branch_responses is None:
            return set(np.flatnonzero(self._matrix.any(axis=1)).tolist())
        return {i for i, protocols in enumerate(self._branch_responses) if protocols}

    @property
    def num_responsive(self) -> int:
        if self._branch_responses is None:
            return int(self._matrix.any(axis=1).sum())
        return len(self.responsive_branches)

    @property
    def is_aliased(self) -> bool:
        """All fan-out branches responded -> the prefix is labelled aliased."""
        if self._aliased is None:
            self._aliased = (
                self.num_responsive >= self.num_targets and self.num_targets > 0
            )
        return self._aliased

    @property
    def probes_sent(self) -> int:
        """Number of probe packets sent for this prefix (16 per protocol)."""
        return self.num_targets * 2  # ICMPv6 + TCP/80

    def __repr__(self) -> str:
        return (
            f"PrefixProbeOutcome({self.prefix}, day={self.day}, "
            f"responsive={self.num_responsive}/{self.num_targets})"
        )


@dataclass(slots=True)
class APDResult:
    """Result of one APD run: per-prefix outcomes and the aliased filter."""

    day: int
    outcomes: dict[IPv6Prefix, PrefixProbeOutcome] = field(default_factory=dict)
    _trie: PrefixTrie | None = field(default=None, repr=False, compare=False)
    _flat: FlatLPM | None = field(default=None, repr=False, compare=False)
    _flat_verdicts: "np.ndarray | None" = field(default=None, repr=False, compare=False)

    @property
    def probed_prefixes(self) -> list[IPv6Prefix]:
        return list(self.outcomes)

    @property
    def aliased_prefixes(self) -> list[IPv6Prefix]:
        """All prefixes labelled aliased."""
        return [p for p, o in self.outcomes.items() if o.is_aliased]

    @property
    def non_aliased_prefixes(self) -> list[IPv6Prefix]:
        return [p for p, o in self.outcomes.items() if not o.is_aliased]

    @property
    def probes_sent(self) -> int:
        """Total probe packets sent."""
        return sum(o.probes_sent for o in self.outcomes.values())

    @property
    def addresses_probed(self) -> int:
        """Total distinct target addresses probed."""
        return sum(o.num_targets for o in self.outcomes.values())

    def _ensure_trie(self) -> PrefixTrie:
        if self._trie is None:
            trie: PrefixTrie[bool] = PrefixTrie()
            for prefix, outcome in self.outcomes.items():
                trie.insert(prefix, outcome.is_aliased)
            self._trie = trie
        return self._trie

    def _ensure_flat(self) -> FlatLPM:
        if self._flat is None:
            self._flat = FlatLPM(
                (prefix, outcome.is_aliased)
                for prefix, outcome in self.outcomes.items()
            )
            self._flat_verdicts = np.array(
                [bool(v) for v in self._flat.objects], dtype=bool
            )
        return self._flat

    def is_aliased(self, address: "IPv6Address | int | str") -> bool:
        """Longest-prefix-match classification of one address.

        The most specific probed prefix covering the address decides: this is
        what lets small non-aliased subprefixes survive inside aliased
        covering prefixes (the /116 anomaly of Section 5.1).
        """
        verdict = self._ensure_trie().lookup(address)
        return bool(verdict)

    def is_aliased_batch(self, batch: AddressBatch) -> np.ndarray:
        """Vectorised longest-prefix-match classification of a whole batch.

        Same semantics as :meth:`is_aliased`, but one flattened-LPM binary
        search for the entire array instead of a 128-step trie walk per
        address.
        """
        flat = self._ensure_flat()
        indices = flat.lookup_indices(batch)
        result = np.zeros(len(batch), dtype=bool)
        if flat.objects:
            covered = indices >= 0
            result[covered] = self._flat_verdicts[indices[covered]]
        return result

    def filter_non_aliased(self, addresses: Iterable[IPv6Address]) -> list[IPv6Address]:
        """Addresses that do NOT fall into an aliased prefix (scan input)."""
        return self.split(addresses)[1]

    def split(
        self,
        addresses: Iterable[IPv6Address],
        batch: AddressBatch | None = None,
    ) -> tuple[list[IPv6Address], list[IPv6Address]]:
        """Split addresses into (aliased, non-aliased) by longest-prefix match.

        Pass *batch* (the columnar view of the same addresses, in the same
        order) to skip the conversion when the caller already holds one.
        """
        address_list = list(addresses)
        if not address_list:
            return [], []
        if batch is None:
            batch = AddressBatch.from_addresses(address_list)
        hits = self.is_aliased_batch(batch)
        aliased: list[IPv6Address] = []
        clean: list[IPv6Address] = []
        for address, hit in zip(address_list, hits.tolist()):
            (aliased if hit else clean).append(address)
        return aliased, clean


class AliasedPrefixDetector:
    """The paper's multi-level APD over the simulated Internet.

    Two probing engines are available:

    * ``"batch"`` (default): fan-out targets for all candidate prefixes are
      generated in one vectorised pass and resolved with a single
      :meth:`SimulatedInternet.probe_batch` call -- the hot path for whole
      hitlists, turning O(prefixes x 16 x protocols) Python probe round-trips
      into a handful of array operations.
    * ``"scalar"``: the original per-probe reference loop over
      :meth:`SimulatedInternet.probe`, kept for parity testing, ablations and
      benchmarks.

    Both engines are deterministic per seed; they draw from independent
    random streams, so their stochastic effects (loss, rate limits) are
    identically distributed but not probe-for-probe identical.
    """

    def __init__(
        self,
        internet: SimulatedInternet,
        config: APDConfig = APDConfig(),
        seed: int = 0,
        engine: "ExecutionPolicy | str | None" = None,
    ):
        policy = resolve_policy(engine=engine, fast="batch", reference="scalar")
        if config.fanout != FANOUT:
            raise ValueError("the paper's APD uses a fixed fan-out of 16 probes")
        self.internet = internet
        self.config = config
        self.policy = policy
        self.engine = policy.engine
        self._seed = seed
        self._rng = random.Random(seed)
        self._nprng = np.random.default_rng(seed)

    # -- candidate selection ----------------------------------------------------

    def candidate_prefixes(
        self,
        addresses: Sequence[IPv6Address],
        extra_prefixes: Iterable[IPv6Prefix] = (),
    ) -> list[IPv6Prefix]:
        """Prefixes to probe for a hitlist (Section 5.1).

        Hitlist addresses are mapped to every length in ``prefix_lengths``;
        a prefix qualifies when it covers more than ``min_targets_per_prefix``
        addresses, except /64s which always qualify.  ``extra_prefixes``
        (e.g. BGP announcements) are probed as given.
        """
        counts: dict[IPv6Prefix, int] = {}
        if addresses:
            batch = AddressBatch.from_addresses(addresses)
            for length in self.config.prefix_lengths:
                networks = batch.masked(length)
                stacked = np.stack((networks.hi, networks.lo), axis=1)
                uniques, unique_counts = np.unique(stacked, axis=0, return_counts=True)
                for (hi, lo), count in zip(uniques.tolist(), unique_counts.tolist()):
                    counts[IPv6Prefix((hi << 64) | lo, length)] = count
        candidates: list[IPv6Prefix] = []
        seen: set[IPv6Prefix] = set()
        for prefix, count in counts.items():
            if count > self.config.min_targets_per_prefix or (
                prefix.length == 64 and self.config.always_probe_64
            ):
                candidates.append(prefix)
                seen.add(prefix)
        for prefix in extra_prefixes:
            if prefix not in seen:
                seen.add(prefix)
                candidates.append(prefix)
        return sorted(candidates)

    # -- probing -----------------------------------------------------------------

    def probe_prefix(self, prefix: IPv6Prefix, day: int = 0) -> PrefixProbeOutcome:
        """Probe one prefix with the 16-branch fan-out on ICMPv6 and TCP/80.

        Thin wrapper kept for backward compatibility: dispatches to the
        detector's engine (a one-prefix batch, or the scalar reference loop).
        """
        if self.engine == "batch":
            return self.probe_prefixes([prefix], day)[prefix]
        return self._probe_prefix_scalar(prefix, day)

    def _probe_prefix_scalar(self, prefix: IPv6Prefix, day: int = 0) -> PrefixProbeOutcome:
        """Reference implementation: one :meth:`SimulatedInternet.probe` call
        per target and protocol."""
        targets = fanout_targets(prefix, self._rng, self.config.fanout)
        outcome = PrefixProbeOutcome(prefix=prefix, day=day, targets=targets)
        for target in targets:
            answered: set[Protocol] = set()
            for protocol in self.config.protocols:
                reply = self.internet.probe(target, protocol, day, rng=self._rng)
                if reply is not None:
                    answered.add(protocol)
            outcome.branch_responses.append(answered)
        return outcome

    def probe_prefixes(
        self, prefixes: Iterable[IPv6Prefix], day: int = 0
    ) -> dict[IPv6Prefix, PrefixProbeOutcome]:
        """Probe many candidate prefixes in one vectorised pass (the hot path).

        Fan-out targets for every prefix are generated with
        :func:`batch_fanout_targets` and resolved by one
        :meth:`SimulatedInternet.probe_batch` call; the per-prefix outcomes
        are then reassembled from the responsiveness matrix.  Duplicate
        prefixes collapse onto one outcome (probed once).
        """
        prefix_list = list(dict.fromkeys(prefixes))
        if self.engine == "scalar":
            return {p: self._probe_prefix_scalar(p, day) for p in prefix_list}
        if self.policy.is_streaming and prefix_list:
            return self._probe_prefixes_streaming(prefix_list, day)
        targets, prefix_index, _branch = batch_fanout_targets(prefix_list, self._nprng)
        result = self.internet.probe_batch(
            targets, self.config.protocols, day, rng=self._nprng
        )
        counts = np.bincount(prefix_index, minlength=len(prefix_list)).astype(np.int64)
        starts = np.cumsum(counts) - counts
        protocols = result.protocols
        outcomes: dict[IPv6Prefix, PrefixProbeOutcome] = {}
        for i, prefix in enumerate(prefix_list):
            start, end = int(starts[i]), int(starts[i] + counts[i])
            outcomes[prefix] = PrefixProbeOutcome.from_matrix(
                prefix,
                day,
                AddressBatch(targets.hi[start:end], targets.lo[start:end]),
                result.responsive[start:end],
                protocols,
            )
        return outcomes

    def _probe_prefixes_streaming(
        self, prefix_list: list[IPv6Prefix], day: int
    ) -> dict[IPv6Prefix, PrefixProbeOutcome]:
        """Out-of-core / multi-core twin of the batch probing path.

        Fan-out targets are generated and probed ``chunk_rows`` rows at a
        time (optionally sharded over forked workers and stored in unlinked
        memmap scratch), yet bit-identical to the one-shot batch path: the
        random host bits of any row span are recovered from the pre-draw
        generator state via :func:`fanout_rand_chunk`, and the generator is
        advanced past the whole conceptual draw afterwards so later calls
        stay stream-aligned with the plain engine.  Probe-side randomness is
        per-chunk (``default_rng((seed, day, chunk_start))``): with
        stochastic anomalies disabled ``probe_batch`` draws nothing and
        verdicts match the plain engine exactly; with them enabled, results
        are reproducible for a fixed ``chunk_rows`` and shard plan.
        """
        policy = self.policy
        plan = FanoutPlan(prefix_list)
        total = plan.total
        protocols = self.config.protocols
        chunk_rows = policy.effective_chunk_rows or max(total, 1)
        if policy.storage == "memmap" and total:
            targets_hi = scratch_memmap((total,), np.uint64)
            targets_lo = scratch_memmap((total,), np.uint64)
            responsive = scratch_memmap((total, len(protocols)), np.bool_)
        else:
            targets_hi = np.empty(total, dtype=np.uint64)
            targets_lo = np.empty(total, dtype=np.uint64)
            responsive = np.zeros((total, len(protocols)), dtype=bool)
        state = self._nprng.bit_generator.state
        internet = self.internet
        seed = self._seed

        def probe_chunk(span: tuple[int, int]):
            s, e = span
            rand_hi, rand_lo = fanout_rand_chunk(state, s, e, total)
            chunk, _, _ = plan.chunk(s, e, rand_hi, rand_lo)
            result = internet.probe_batch(
                chunk, protocols, day, rng=np.random.default_rng((seed, day, s))
            )
            return chunk, result.responsive

        if policy.workers > 1:
            if policy.shard_by == "prefix":
                spans = plan.worker_spans(policy.workers)
            else:
                spans = plan_worker_spans(total, policy.workers, chunk_rows)

            def run_span(span: tuple[int, int]):
                partials = []
                for bounds in plan_chunk_spans_within(span[0], span[1], chunk_rows):
                    chunk, resp = probe_chunk(bounds)
                    partials.append((bounds[0], chunk.hi, chunk.lo, resp))
                return partials

            # Fixed span order; the parent writes each partial back at its
            # global offset, so assembly is order-independent of worker
            # scheduling.
            for partials in map_shards(run_span, spans, policy.workers):
                for s, hi, lo, resp in partials:
                    e = s + hi.shape[0]
                    targets_hi[s:e] = hi
                    targets_lo[s:e] = lo
                    responsive[s:e] = resp
        else:
            # Single worker: stream chunk by chunk straight into the stores;
            # with memmap storage the resident set stays O(chunk_rows).
            for s, e in plan_chunk_spans(total, chunk_rows):
                chunk, resp = probe_chunk((s, e))
                targets_hi[s:e] = chunk.hi
                targets_lo[s:e] = chunk.lo
                responsive[s:e] = resp
        # Consume the conceptual single-pass draw (one step per target and
        # limb) so subsequent fan-outs match the plain engine's stream.
        self._nprng.bit_generator.advance(2 * total)
        outcomes: dict[IPv6Prefix, PrefixProbeOutcome] = {}
        for i, prefix in enumerate(prefix_list):
            start = int(plan.starts[i])
            end = start + int(plan.counts[i])
            outcomes[prefix] = PrefixProbeOutcome.from_matrix(
                prefix,
                day,
                AddressBatch(targets_hi[start:end], targets_lo[start:end]),
                responsive[start:end],
                protocols,
            )
        return outcomes

    def run(
        self,
        addresses: Sequence[IPv6Address] = (),
        prefixes: Iterable[IPv6Prefix] = (),
        day: int = 0,
    ) -> APDResult:
        """Run APD for a hitlist and/or an explicit prefix list on one day."""
        candidates = self.candidate_prefixes(addresses, extra_prefixes=prefixes)
        result = APDResult(day=day)
        result.outcomes = self.probe_prefixes(candidates, day)
        return result

    def run_window(
        self,
        addresses: Sequence[IPv6Address],
        days: Sequence[int],
        prefixes: Iterable[IPv6Prefix] = (),
    ) -> "Mapping[int, APDResult]":
        """Run APD daily over several days (input to the sliding window)."""
        return {day: self.run(addresses, prefixes, day) for day in days}
