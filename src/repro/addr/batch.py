"""Columnar IPv6 address batches (the vectorised substrate).

Scalar :class:`~repro.addr.address.IPv6Address` objects are convenient but far
too slow for the paper's probing volumes: multi-level APD alone fans out 16
targets per candidate prefix at every length from /64 to /124, and the daily
hitlist service re-probes the whole input on five protocols.  This module
keeps whole *batches* of addresses as a pair of numpy ``uint64`` arrays (the
upper and lower 64 bits of each address) so that the hot operations -- nybble
extraction, prefix truncation, EUI-64 detection, longest-prefix matching and
fan-out target generation -- become a handful of array operations instead of
per-address Python round-trips.

Three pieces live here:

* :class:`AddressBatch` -- the columnar address representation with bulk
  versions of the :class:`IPv6Address` accessors,
* :class:`FlatLPM` -- a flattened longest-prefix-match table: a prefix set is
  decomposed once into disjoint 128-bit intervals so that batch lookups are a
  single vectorised binary search instead of per-address trie walks,
* :func:`batch_fanout_targets` -- vectorised generation of the paper's
  16-probe APD fan-out for many prefixes at once (Table 3).

128-bit values do not fit numpy's integer dtypes, so comparisons and searches
operate lexicographically on ``(hi, lo)`` pairs; :func:`searchsorted128`
implements a vectorised binary search over such pairs.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.addr.address import (
    BITS,
    FULL_MASK,
    HEX_ALPHABET,
    LO_MASK,
    NYBBLES,
    IPv6Address,
    _to_int,
)
from repro.addr.prefix import IPv6Prefix

#: All-ones 64-bit mask as a numpy scalar.
U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)

_LO_MASK = LO_MASK

_HEX_CHARS = np.array(list(HEX_ALPHABET))


def _shl64(x: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Elementwise ``x << shift`` on uint64 where ``shift`` may fall outside 0..63.

    C (and therefore numpy) leaves shifts by >= the bit width undefined; this
    helper returns 0 for out-of-range lanes (including negative shift counts,
    which appear in lanes a surrounding ``np.where`` discards), the
    arithmetically correct result for mask building.
    """
    x = np.asarray(x, dtype=np.uint64)
    shift = np.asarray(shift)
    ok = (shift >= 0) & (shift < 64)
    safe = np.where(ok, shift, 0).astype(np.uint64)
    return np.where(ok, x << safe, np.uint64(0))


def _shr64(x: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Elementwise ``x >> shift`` on uint64, returning 0 where shift is outside 0..63."""
    x = np.asarray(x, dtype=np.uint64)
    shift = np.asarray(shift)
    ok = (shift >= 0) & (shift < 64)
    safe = np.where(ok, shift, 0).astype(np.uint64)
    return np.where(ok, x >> safe, np.uint64(0))


def readonly_view(array: np.ndarray) -> np.ndarray:
    """A read-only view of *array* (shares memory, no copy).

    The publish-boundary guard: everything a hitlist snapshot hands out is
    wrapped in one of these, so a consumer that tries to mutate published
    arrays gets an immediate ``ValueError`` from numpy instead of silently
    corrupting state shared with concurrent readers.
    """
    view = array.view()
    view.flags.writeable = False
    return view


def prefix_masks(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(hi, lo) netmasks for an array of prefix lengths (0..128)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    mask_hi = _shl64(U64_MAX, 64 - np.minimum(lengths, 64))
    mask_lo = _shl64(U64_MAX, 128 - np.maximum(lengths, 64))
    return mask_hi, mask_lo


class AddressBatch:
    """A batch of IPv6 addresses stored column-wise as uint64 hi/lo arrays.

    The batch is immutable by convention: operations return new batches (or
    plain numpy arrays) and never modify ``hi``/``lo`` in place.
    """

    __slots__ = ("hi", "lo")

    #: Immutability contract, enforced statically by reprolint rule R2:
    #: the limb arrays are bound once in ``__init__`` and never rebound or
    #: mutated in place -- every operation returns a new batch or new arrays.
    __frozen_arrays__ = ("hi", "lo")

    def __init__(self, hi: np.ndarray, lo: np.ndarray):
        hi = np.asarray(hi, dtype=np.uint64)
        lo = np.asarray(lo, dtype=np.uint64)
        if hi.ndim != 1 or hi.shape != lo.shape:
            raise ValueError("hi and lo must be 1-D arrays of equal length")
        self.hi = hi
        self.lo = lo

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "AddressBatch":
        return cls(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint64))

    @classmethod
    def from_ints(cls, values: Iterable[int]) -> "AddressBatch":
        """Build a batch from an iterable of 128-bit integers."""
        vals = values if isinstance(values, list) else list(values)
        n = len(vals)
        hi = np.fromiter((v >> 64 for v in vals), dtype=np.uint64, count=n)
        lo = np.fromiter((v & _LO_MASK for v in vals), dtype=np.uint64, count=n)
        return cls(hi, lo)

    @classmethod
    def from_addresses(
        cls, addresses: Iterable["IPv6Address | int | str"]
    ) -> "AddressBatch":
        """Build a batch from address-like values (addresses, ints, strings)."""
        return cls.from_ints([_to_int(a) for a in addresses])

    @classmethod
    def concatenate(cls, batches: Sequence["AddressBatch"]) -> "AddressBatch":
        if not batches:
            return cls.empty()
        return cls(
            np.concatenate([b.hi for b in batches]),
            np.concatenate([b.lo for b in batches]),
        )

    # -- out-of-core storage ----------------------------------------------

    def to_memmap(self, path: "str | os.PathLike[str]") -> str:
        """Write the batch to *path* as a shape ``(2, n)`` uint64 ``.npy`` file.

        Row 0 holds ``hi``, row 1 ``lo``.  The file is a plain ``.npy`` so it
        round-trips through :meth:`from_memmap` (zero-copy, read-only mapping)
        as well as ordinary ``np.load``.  Returns the written path.
        """
        out = np.lib.format.open_memmap(
            os.fspath(path), mode="w+", dtype=np.uint64, shape=(2, len(self))
        )
        out[0] = self.hi
        out[1] = self.lo
        out.flush()
        return os.fspath(path)

    @classmethod
    def from_memmap(cls, path: "str | os.PathLike[str]") -> "AddressBatch":
        """Open a batch written by :meth:`to_memmap` as a read-only mapping.

        The returned batch's ``hi``/``lo`` are views over the file mapping --
        no rows are materialised in RAM until touched, which is what lets the
        streaming kernels in :mod:`repro.exec` bound their working set by
        ``chunk_rows`` instead of the corpus size.
        """
        mapped = np.lib.format.open_memmap(os.fspath(path), mode="r")
        if mapped.ndim != 2 or mapped.shape[0] != 2 or mapped.dtype != np.uint64:
            raise ValueError(
                f"not an AddressBatch memmap: {os.fspath(path)!r} has "
                f"dtype={mapped.dtype}, shape={mapped.shape} "
                "(expected uint64, shape (2, n))"
            )
        return cls(mapped[0], mapped[1])

    # -- conversion --------------------------------------------------------

    def to_ints(self) -> list[int]:
        """The batch as a list of plain 128-bit Python integers."""
        his = self.hi.tolist()
        los = self.lo.tolist()
        return [(h << 64) | l for h, l in zip(his, los)]

    def to_addresses(self) -> list[IPv6Address]:
        """The batch as scalar :class:`IPv6Address` objects."""
        return [IPv6Address(v) for v in self.to_ints()]

    def __len__(self) -> int:
        return int(self.hi.shape[0])

    def __getitem__(self, index: int) -> IPv6Address:
        return IPv6Address((int(self.hi[index]) << 64) | int(self.lo[index]))

    def __iter__(self) -> Iterator[IPv6Address]:
        return iter(self.to_addresses())

    def __repr__(self) -> str:
        return f"AddressBatch(n={len(self)})"

    # -- structure ---------------------------------------------------------

    @property
    def network_part(self) -> np.ndarray:
        """The upper 64 bits of every address."""
        return self.hi

    @property
    def iid(self) -> np.ndarray:
        """The lower 64 bits (interface identifiers)."""
        return self.lo

    def nybble(self, index: int) -> np.ndarray:
        """Nybble *index* (1-based, as in the paper's Eq. 2) of every address."""
        if not 1 <= index <= 32:
            raise IndexError(f"nybble index out of range: {index}")
        if index <= 16:
            shift = np.uint64(4 * (16 - index))
            return ((self.hi >> shift) & np.uint64(0xF)).astype(np.uint8)
        shift = np.uint64(4 * (32 - index))
        return ((self.lo >> shift) & np.uint64(0xF)).astype(np.uint8)

    def nybbles_matrix(self, first: int = 1, last: int = 32) -> np.ndarray:
        """An ``(n, last-first+1)`` uint8 matrix of nybble values.

        Column *j* holds nybble ``first + j`` of every address; this is the
        input shape of the entropy fingerprint computation (Section 4).
        """
        if not 1 <= first <= last <= 32:
            raise ValueError(f"invalid nybble span {first}..{last}")
        columns = [self.nybble(index) for index in range(first, last + 1)]
        return np.stack(columns, axis=1) if columns else np.zeros((len(self), 0), np.uint8)

    def nybble_strings(self) -> list[str]:
        """Every address as its 32-character lowercase hex string.

        One vectorised character gather + view instead of per-address
        formatting; the bulk counterpart of :attr:`IPv6Address.nybbles`.
        """
        if len(self) == 0:
            return []
        chars = _HEX_CHARS[self.nybbles_matrix()]
        return chars.view(f"<U{NYBBLES}").ravel().tolist()

    def masked(self, length: int) -> "AddressBatch":
        """Every address truncated to its covering /*length* network.

        The batch equivalent of ``IPv6Prefix.of(addr, length).network``.
        """
        mask_hi, mask_lo = prefix_masks(np.int64(length))
        return AddressBatch(self.hi & mask_hi, self.lo & mask_lo)

    def is_slaac_eui64(self) -> np.ndarray:
        """Boolean array: does the IID carry the EUI-64 ``ff:fe`` marker?"""
        return ((self.lo >> np.uint64(24)) & np.uint64(0xFFFF)) == np.uint64(0xFFFE)

    def iid_hamming_weight(self) -> np.ndarray:
        """Bits set in each interface identifier (Section 8)."""
        return np.bitwise_count(self.lo)

    def hamming_weight(self) -> np.ndarray:
        """Bits set across each full 128-bit address."""
        return np.bitwise_count(self.hi) + np.bitwise_count(self.lo)

    def mac_vendor_oui(self) -> np.ndarray:
        """Per-address 24-bit vendor OUI for EUI-64 IIDs, -1 otherwise."""
        oui = ((self.lo >> np.uint64(40)) & np.uint64(0xFFFFFF)) ^ np.uint64(0x020000)
        return np.where(self.is_slaac_eui64(), oui.astype(np.int64), np.int64(-1))

    # -- ordering ----------------------------------------------------------

    def argsort(self) -> np.ndarray:
        """Indices sorting the batch in ascending 128-bit order."""
        return np.lexsort((self.lo, self.hi))

    def take(self, indices: np.ndarray) -> "AddressBatch":
        return AddressBatch(self.hi[indices], self.lo[indices])

    def readonly(self) -> "AddressBatch":
        """This batch with read-only ``hi``/``lo`` views (no copy).

        Hands the same memory to consumers while making in-place mutation a
        ``ValueError``; see :func:`readonly_view`.
        """
        return AddressBatch(readonly_view(self.hi), readonly_view(self.lo))

    def sort(self) -> "AddressBatch":
        return self.take(self.argsort())

    def is_sorted(self) -> bool:
        """Is the batch in ascending 128-bit order (duplicates allowed)?"""
        if len(self) < 2:
            return True
        hi, lo = self.hi, self.lo
        ascending = (hi[1:] > hi[:-1]) | ((hi[1:] == hi[:-1]) & (lo[1:] >= lo[:-1]))
        return bool(ascending.all())

    def sorted_run_starts(self) -> np.ndarray:
        """Start index of every run of equal addresses (batch must be sorted).

        The shared boundary-scan behind dedup, provenance merging and
        prefix grouping: one vectorised neighbour comparison instead of a
        Python group-by.
        """
        if len(self) == 0:
            return np.zeros(0, dtype=np.int64)
        boundary = np.ones(len(self), dtype=bool)
        boundary[1:] = (self.hi[1:] != self.hi[:-1]) | (self.lo[1:] != self.lo[:-1])
        return np.flatnonzero(boundary).astype(np.int64)

    def unique(self) -> "AddressBatch":
        """Sorted batch with duplicate addresses removed."""
        if len(self) == 0:
            return AddressBatch.empty()
        s = self.sort()
        return s.take(s.sorted_run_starts())

    def unique_stable(self) -> "AddressBatch":
        """Duplicates removed, first occurrences kept in input order.

        The batch equivalent of :func:`repro.addr.generate.dedupe`: the
        lexsort behind :meth:`argsort` is stable, so the first row of every
        equal run carries the smallest original index -- sorting those
        indices restores first-seen order.
        """
        if len(self) == 0:
            return AddressBatch.empty()
        order = self.argsort()
        s = self.take(order)
        firsts = order[s.sorted_run_starts()]
        return self.take(np.sort(firsts))

    def prefix_groups(
        self, length: int
    ) -> tuple[np.ndarray, np.ndarray, "AddressBatch"]:
        """Group the batch by covering /*length* prefix in one sort.

        Returns ``(order, starts, networks)`` where ``order`` sorts the batch
        by masked prefix (ties broken arbitrarily but deterministically),
        ``starts[g]`` is the first position of group *g* within the sorted
        batch, and ``networks`` holds each group's network address (one entry
        per group, ascending).  This is the batch equivalent of
        ``group_by_prefix``: one ``lexsort`` + one boundary scan instead of a
        Python dict fill with per-address ``IPv6Prefix`` construction.
        """
        masked = self.masked(length)
        order = np.lexsort((masked.lo, masked.hi))
        if len(self) == 0:
            return order, np.zeros(0, dtype=np.int64), AddressBatch.empty()
        hi = masked.hi[order]
        lo = masked.lo[order]
        boundary = np.ones(len(self), dtype=bool)
        boundary[1:] = (hi[1:] != hi[:-1]) | (lo[1:] != lo[:-1])
        starts = np.flatnonzero(boundary).astype(np.int64)
        return order, starts, AddressBatch(hi[starts], lo[starts])


def searchsorted128(
    sorted_hi: np.ndarray,
    sorted_lo: np.ndarray,
    query_hi: np.ndarray,
    query_lo: np.ndarray,
    side: str = "right",
) -> np.ndarray:
    """Vectorised ``searchsorted`` over 128-bit ``(hi, lo)`` keys.

    ``sorted_hi/lo`` must be sorted lexicographically.  Implemented as an
    explicit branchless binary search (~log2(n) vectorised steps) because
    numpy has no native 128-bit dtype.
    """
    if side not in ("left", "right"):
        raise ValueError(f"invalid side: {side!r}")
    n = int(sorted_hi.shape[0])
    query_hi = np.asarray(query_hi, dtype=np.uint64)
    query_lo = np.asarray(query_lo, dtype=np.uint64)
    result_lo = np.zeros(query_hi.shape, dtype=np.int64)
    if n == 0:
        return result_lo
    result_hi = np.full(query_hi.shape, n, dtype=np.int64)
    for _ in range(n.bit_length() + 1):
        active = result_lo < result_hi
        if not active.any():
            break
        mid = (result_lo + result_hi) >> 1
        safe_mid = np.minimum(mid, n - 1)
        mh = sorted_hi[safe_mid]
        ml = sorted_lo[safe_mid]
        if side == "right":
            go_right = (mh < query_hi) | ((mh == query_hi) & (ml <= query_lo))
        else:
            go_right = (mh < query_hi) | ((mh == query_hi) & (ml < query_lo))
        go_right &= active
        result_lo = np.where(go_right, mid + 1, result_lo)
        result_hi = np.where(active & ~go_right, mid, result_hi)
    return result_lo


def find128(
    sorted_hi: np.ndarray,
    sorted_lo: np.ndarray,
    query_hi: np.ndarray,
    query_lo: np.ndarray,
) -> np.ndarray:
    """Exact-match positions of queries in sorted ``(hi, lo)`` arrays, -1 if absent."""
    n = int(sorted_hi.shape[0])
    if n == 0:
        return np.full(np.asarray(query_hi).shape, -1, dtype=np.int64)
    pos = searchsorted128(sorted_hi, sorted_lo, query_hi, query_lo, side="left")
    safe = np.minimum(pos, n - 1)
    hit = (pos < n) & (sorted_hi[safe] == query_hi) & (sorted_lo[safe] == query_lo)
    return np.where(hit, safe, np.int64(-1))


def union_sorted(
    base: AddressBatch, incoming: AddressBatch
) -> tuple[AddressBatch, np.ndarray, np.ndarray, np.ndarray]:
    """Merge a sorted-unique *incoming* batch into a sorted-unique *base*.

    This is the vectorised dedup step of the incremental hitlist merge: the
    standing batch stays sorted, so membership of the day's new records is one
    :func:`find128` binary search and the insertion points one
    :func:`searchsorted128` pass -- no Python-dict round-trips.

    Returns ``(merged, base_pos, incoming_pos, is_new)`` where ``merged`` is
    the sorted union, ``base_pos[i]`` is the position of ``base[i]`` in
    ``merged``, ``incoming_pos[j]`` the position of ``incoming[j]`` in
    ``merged``, and ``is_new[j]`` flags incoming rows absent from ``base``.
    """
    n, m = len(base), len(incoming)
    if m == 0:
        return base, np.arange(n, dtype=np.int64), np.zeros(0, np.int64), np.zeros(0, bool)
    match = find128(base.hi, base.lo, incoming.hi, incoming.lo)
    is_new = match < 0
    fresh = incoming.take(is_new)
    insert = searchsorted128(base.hi, base.lo, fresh.hi, fresh.lo, side="left")
    # Each base row shifts right by the number of fresh rows inserted at or
    # before it; fresh row j lands at its insertion point plus its own rank.
    inserted_before = np.cumsum(np.bincount(insert, minlength=n + 1)).astype(np.int64)
    base_pos = np.arange(n, dtype=np.int64) + inserted_before[:n]
    fresh_pos = insert + np.arange(len(fresh), dtype=np.int64)
    merged_hi = np.empty(n + len(fresh), dtype=np.uint64)
    merged_lo = np.empty(n + len(fresh), dtype=np.uint64)
    merged_hi[base_pos] = base.hi
    merged_lo[base_pos] = base.lo
    merged_hi[fresh_pos] = fresh.hi
    merged_lo[fresh_pos] = fresh.lo
    incoming_pos = np.empty(m, dtype=np.int64)
    incoming_pos[is_new] = fresh_pos
    incoming_pos[~is_new] = base_pos[match[~is_new]]
    return AddressBatch(merged_hi, merged_lo), base_pos, incoming_pos, is_new


class FlatLPM:
    """Flattened longest-prefix matching over a fixed prefix set.

    A set of CIDR prefixes (any two are either disjoint or nested) is swept
    once into at most ``2 * len(prefixes) + 1`` disjoint address intervals,
    each annotated with the index of its most specific covering prefix.  A
    batch lookup is then one vectorised binary search over the interval start
    points -- replacing the per-address 128-step trie walk that dominates
    scalar de-aliasing and BGP mapping.
    """

    __slots__ = ("objects", "_starts_hi", "_starts_lo", "_values")

    #: Immutability contract, enforced statically by reprolint rule R2: the
    #: interval arrays are built once in ``__init__`` and then only read --
    #: lookups are pure searchsorted probes over frozen columns.
    __frozen_arrays__ = ("_starts_hi", "_starts_lo", "_values")

    def __init__(self, pairs: Iterable[tuple["IPv6Prefix", object]]):
        pairs = list(pairs)
        #: Value objects, indexable by the result of :meth:`lookup_indices`.
        self.objects: list[object] = [value for _, value in pairs]
        entries = sorted(
            (prefix.network, prefix.length, index)
            for index, (prefix, _) in enumerate(pairs)
        )
        boundaries: list[tuple[int, int]] = [(0, -1)]
        stack: list[tuple[int, int]] = []  # (last covered address, value index)
        for network, length, value_index in entries:
            end = network | (FULL_MASK >> length) if length else FULL_MASK
            while stack and stack[-1][0] < network:
                popped_end, _ = stack.pop()
                boundaries.append((popped_end + 1, stack[-1][1] if stack else -1))
            boundaries.append((network, value_index))
            stack.append((end, value_index))
        while stack:
            popped_end, _ = stack.pop()
            if popped_end < FULL_MASK:
                boundaries.append((popped_end + 1, stack[-1][1] if stack else -1))
        starts: list[int] = []
        values: list[int] = []
        for start, value in boundaries:
            if starts and starts[-1] == start:
                values[-1] = value
            else:
                starts.append(start)
                values.append(value)
        self._starts_hi = np.fromiter(
            (s >> 64 for s in starts), dtype=np.uint64, count=len(starts)
        )
        self._starts_lo = np.fromiter(
            (s & _LO_MASK for s in starts), dtype=np.uint64, count=len(starts)
        )
        self._values = np.asarray(values, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.objects)

    def lookup_indices(self, batch: AddressBatch) -> np.ndarray:
        """Index (into :attr:`objects`) of each address's most specific
        covering prefix, or -1 where no stored prefix covers the address."""
        pos = searchsorted128(
            self._starts_hi, self._starts_lo, batch.hi, batch.lo, side="right"
        )
        return self._values[pos - 1]

    def lookup_values(self, batch: AddressBatch) -> list[object]:
        """The covering prefixes' value objects (None where uncovered)."""
        return [
            self.objects[i] if i >= 0 else None
            for i in self.lookup_indices(batch).tolist()
        ]


def _random_host_bits(
    shift: np.ndarray, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random (hi, lo) fills for the low *shift* host bits of each address."""
    rand_hi = rng.integers(0, U64_MAX, size=count, dtype=np.uint64, endpoint=True)
    rand_lo = rng.integers(0, U64_MAX, size=count, dtype=np.uint64, endpoint=True)
    mask_hi = np.where(
        shift > 64, _shl64(np.uint64(1), shift - 64) - np.uint64(1), np.uint64(0)
    )
    mask_lo = np.where(shift >= 64, U64_MAX, _shl64(np.uint64(1), shift) - np.uint64(1))
    return rand_hi & mask_hi, rand_lo & mask_lo


def batch_fanout_targets(
    prefixes: Sequence["IPv6Prefix"], rng: np.random.Generator
) -> tuple[AddressBatch, np.ndarray, np.ndarray]:
    """Vectorised APD fan-out generation for many prefixes at once.

    For every prefix of length ``L`` this draws one pseudo-random address in
    each of its 16 length-``L+4`` subprefixes (fewer for L > 124, where the
    remaining host bits are enumerated), exactly like the scalar
    :func:`repro.addr.generate.fanout_targets`, but in one pass over numpy
    arrays for the whole prefix list.

    Returns ``(targets, prefix_index, branch)`` where ``prefix_index[i]`` is
    the position of target *i*'s prefix in *prefixes* and ``branch[i]`` is its
    fan-out branch number.  Targets of one prefix are contiguous and ordered
    by branch.
    """
    num_prefixes = len(prefixes)
    if num_prefixes == 0:
        empty_idx = np.zeros(0, dtype=np.int64)
        return AddressBatch.empty(), empty_idx, empty_idx
    net_hi = np.fromiter((p.network >> 64 for p in prefixes), np.uint64, num_prefixes)
    net_lo = np.fromiter((p.network & _LO_MASK for p in prefixes), np.uint64, num_prefixes)
    lengths = np.fromiter((p.length for p in prefixes), np.int64, num_prefixes)
    sub_lengths = np.minimum(lengths + 4, BITS)
    counts = (1 << (sub_lengths - lengths)).astype(np.int64)
    total = int(counts.sum())
    prefix_index = np.repeat(np.arange(num_prefixes, dtype=np.int64), counts)
    first_of_prefix = np.repeat(np.cumsum(counts) - counts, counts)
    branch = np.arange(total, dtype=np.int64) - first_of_prefix
    # Place the branch number just below the prefix, then fill the remaining
    # host bits with random values.  ``shift`` is the bit position of the
    # branch field and simultaneously the number of random host bits.
    shift = (BITS - sub_lengths)[prefix_index]
    b = branch.astype(np.uint64)
    hi_part = np.where(shift >= 64, _shl64(b, shift - 64), _shr64(b, 64 - shift))
    lo_part = np.where(shift >= 64, np.uint64(0), _shl64(b, shift))
    rand_hi, rand_lo = _random_host_bits(shift, total, rng)
    target_hi = net_hi[prefix_index] | hi_part | rand_hi
    target_lo = net_lo[prefix_index] | lo_part | rand_lo
    return AddressBatch(target_hi, target_lo), prefix_index, branch


def random_batch_in_prefix(
    prefix: "IPv6Prefix", count: int, rng: np.random.Generator
) -> AddressBatch:
    """*count* pseudo-random addresses uniformly drawn from *prefix* (batch)."""
    shift = np.int64(BITS - prefix.length)
    rand_hi, rand_lo = _random_host_bits(shift, count, rng)
    hi = np.uint64(prefix.network >> 64) | rand_hi
    lo = np.uint64(prefix.network & _LO_MASK) | rand_lo
    return AddressBatch(hi, lo)
