"""Shared fixtures for the benchmark harness.

All per-table/figure benchmarks share one :class:`ExperimentContext` at the
default experiment scale, so the expensive pipeline steps (Internet build,
source assembly, APD, day-0 sweep) run once per session.  Each benchmark then
measures its experiment's analysis step with a single pedantic round -- the
point is regenerating the paper's numbers, not micro-timing.

``--repro-scenario NAME`` swaps the context's configuration for a scenario
preset from :mod:`repro.scenarios` (composed with the default scale tier), so
every ``ctx``-based benchmark can be re-run under e.g. ``cdn-heavy`` or
``high-churn`` without code changes.  (The engine-speedup benchmarks that
build their own module-level Internets are unaffected by the flag.)

Speedup benchmarks additionally publish machine-readable results: one
``BENCH_<name>.json`` per benchmark (via :func:`write_bench_json`), written
to ``$REPRO_BENCH_DIR`` (default: the working directory).  Each file carries
an append-only ``history`` list -- one record per run, stamped with commit
and timestamp -- so the performance trajectory accumulates run over run; CI
uploads the files as artifacts.
"""

import datetime
import json
import os
import platform
import subprocess
from pathlib import Path

import pytest

from repro.experiments.context import DEFAULT_EXPERIMENT_CONFIG, ExperimentContext
from repro.scenarios import get_scenario, scenario_names


def pytest_addoption(parser):
    parser.addoption(
        "--repro-hitlist-target",
        action="store",
        default=None,
        type=int,
        help="Override the hitlist input size used by the benchmark context.",
    )
    parser.addoption(
        "--repro-scenario",
        action="store",
        default=None,
        help=(
            "Run the benchmark context inside a named scenario preset "
            f"(one of: {', '.join(scenario_names())})."
        ),
    )


@pytest.fixture(scope="session")
def ctx(request) -> ExperimentContext:
    """The shared experiment context (default scale or a scenario preset)."""
    scenario = request.config.getoption("--repro-scenario")
    if scenario:
        config = get_scenario(scenario).experiment_config()
    else:
        config = DEFAULT_EXPERIMENT_CONFIG
    override = request.config.getoption("--repro-hitlist-target")
    if override:
        from dataclasses import replace

        config = replace(config, hitlist_target=override)
    context = ExperimentContext(config)
    # Materialise the shared artefacts once, outside any benchmark timing.
    _ = context.hitlist
    _ = context.apd_result
    _ = context.day0_sweep
    return context


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, iterations=1, rounds=1)


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _load_history(path: Path, name: str) -> list:
    """Existing run records of one benchmark (tolerating the legacy format).

    Early versions wrote a single flat record per file and overwrote it on
    every run; such a record is migrated into the first history entry so the
    trajectory keeps whatever single point survived.
    """
    if not path.exists():
        return []
    try:
        existing = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    if isinstance(existing, dict):
        history = existing.get("history")
        if isinstance(history, list):
            return history
        if existing.get("benchmark") == name:  # legacy single-record file
            return [{k: v for k, v in existing.items() if k != "benchmark"}]
    return []


def write_bench_json(name: str, payload: dict) -> Path:
    """Append one benchmark run to ``BENCH_<name>.json``.

    ``payload`` should carry at least the measured throughput
    (``addresses_per_sec`` or similar) and ``speedup``.  The file holds an
    append-only ``history`` list of run records -- each stamped with git SHA,
    UTC timestamp and environment metadata -- so repeated runs accumulate a
    performance trajectory instead of clobbering the previous record.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **payload,
    }
    record = {"benchmark": name, "history": _load_history(path, name) + [entry]}
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
