"""Table 9 and Section 9.3: crowdsourced client IPv6 addresses.

Reproduced findings:

* MTurk recruits far more participants than Prolific; ~31 % / ~21 % of them
  are IPv6-enabled (Table 9);
* IPv6 clients concentrate in a handful of eyeball ISPs, IPv4 clients are
  more diverse;
* only a small share (~17 %) of collected client addresses answer ICMPv6 --
  bounded above by the CPE-filtering rate measured with RIPE Atlas probes in
  the same ASes (~46 %);
* responsive client addresses churn quickly (median uptime of hours).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.longitudinal import UptimeStats, uptime_statistics
from repro.experiments.context import ExperimentContext
from repro.netmodel.services import HostRole, Protocol
from repro.probing.zmap import ZMapScanner
from repro.sources.crowdsourcing import CrowdPlatform, CrowdsourcingStudy


@dataclass(slots=True)
class Table9Result:
    """Campaign summary plus responsiveness and uptime statistics."""

    summary: Mapping[str, Mapping[str, int]]
    client_response_rate: float
    atlas_response_rate: float
    uptime: UptimeStats
    ipv6_rate_mturk: float
    ipv6_rate_prolific: float

    @property
    def mturk_has_more_participants(self) -> bool:
        return self.summary["mturk"]["ipv4_clients"] > self.summary["prolific"]["ipv4_clients"]

    @property
    def clients_less_responsive_than_atlas(self) -> bool:
        """Client responsiveness is bounded by the Atlas (always-on) rate."""
        return self.client_response_rate <= self.atlas_response_rate + 0.05

    @property
    def clients_churn_quickly(self) -> bool:
        return self.uptime.count == 0 or self.uptime.median_hours < 24.0


def run(ctx: ExperimentContext, scale: float = 0.25) -> Table9Result:
    """Run the crowdsourcing campaign and probe collected client addresses."""
    study = CrowdsourcingStudy(ctx.internet, seed=ctx.config.seed ^ 0xC04D, scale=scale)
    summary = study.summary_table()

    mturk = study.results[CrowdPlatform.MTURK]
    prolific = study.results[CrowdPlatform.PROLIFIC]
    ipv6_rate_mturk = mturk.ipv6_count / mturk.ipv4_count if mturk.ipv4_count else 0.0
    ipv6_rate_prolific = prolific.ipv6_count / prolific.ipv4_count if prolific.ipv4_count else 0.0

    # ICMPv6 probing of collected client addresses: the study already models
    # CPE inbound filtering, so responsiveness == having any uptime.
    addresses = study.all_ipv6_addresses()
    responsive = study.responsive_participants()
    client_rate = len(responsive) / len(addresses) if addresses else 0.0

    # RIPE Atlas probes in eyeball ASes as the upper bound comparison.
    atlas_hosts = [
        h for h in ctx.internet.hosts_by_role(HostRole.ATLAS_PROBE) if Protocol.ICMP in h.services
    ]
    scanner = ZMapScanner(ctx.internet, seed=ctx.config.seed ^ 0xA7A5)
    atlas_result = scanner.scan([h.primary_address for h in atlas_hosts], Protocol.ICMP, day=0)
    atlas_rate = atlas_result.response_rate if atlas_hosts else 1.0

    return Table9Result(
        summary=summary,
        client_response_rate=client_rate,
        atlas_response_rate=atlas_rate,
        uptime=uptime_statistics(study.uptime_hours()),
        ipv6_rate_mturk=ipv6_rate_mturk,
        ipv6_rate_prolific=ipv6_rate_prolific,
    )


def format_table(result: Table9Result) -> str:
    """Render Table 9 plus the Section 9.3 statistics."""
    lines = ["platform   IPv4   IPv6   ASes6"]
    for platform in ("mturk", "prolific", "unique"):
        row = result.summary[platform]
        lines.append(
            f"{platform:<9} {row['ipv4_clients']:>6} {row['ipv6_clients']:>6} {row['ipv6_ases']:>6}"
        )
    lines.append(
        f"IPv6 adoption: MTurk {result.ipv6_rate_mturk:.1%}, Prolific {result.ipv6_rate_prolific:.1%}"
    )
    lines.append(
        f"client ICMPv6 response rate: {result.client_response_rate:.1%} "
        f"(RIPE Atlas upper bound: {result.atlas_response_rate:.1%})"
    )
    lines.append(
        f"responsive client uptime: median {result.uptime.median_hours:.1f} h, "
        f"mean {result.uptime.mean_hours:.1f} h, "
        f"<1 h: {result.uptime.share_under_one_hour:.0%}, "
        f"<=8 h: {result.uptime.share_under_eight_hours:.0%}, "
        f"full month: {result.uptime.share_full_month:.0%}"
    )
    return "\n".join(lines)
