"""The paper's primary contribution: hitlist understanding and unbiasing.

* :mod:`repro.core.entropy` -- nybble entropy fingerprints (Section 4, Eq. 1-5).
* :mod:`repro.core.clustering` -- k-means over fingerprints, SSE elbow method
  (Eq. 6), cluster profiles and popularity.
* :mod:`repro.core.apd` -- multi-level aliased prefix detection (Section 5.1)
  with cross-protocol merging and loss resilience (Section 5.2).
* :mod:`repro.core.apd_murdock` -- Murdock et al.'s static /96 baseline
  (Section 5.5 comparison).
* :mod:`repro.core.sliding_window` -- multi-day response merging and unstable
  prefix accounting (Table 4).
* :mod:`repro.core.consistency` -- TCP/IP fingerprint consistency tests over
  aliased prefixes (Section 5.4, Tables 5-6).
* :mod:`repro.core.hitlist` -- hitlist assembly, de-aliasing, responsive
  subsets and the daily hitlist service (Sections 6 and 11).
* :mod:`repro.core.bias` -- AS/prefix balance metrics and top-X distributions.
"""

from repro.core.entropy import (
    EntropyFingerprint,
    entropy_fingerprint,
    grouped_nybble_entropies,
    nybble_entropies,
)
from repro.core.clustering import (
    ClusteringResult,
    EntropyClustering,
    KMeansResult,
    elbow_k,
    kmeans,
)
from repro.core.apd import AliasedPrefixDetector, APDConfig, APDResult, PrefixProbeOutcome
from repro.core.apd_murdock import MurdockDetector, MurdockResult
from repro.core.sliding_window import SlidingWindowMerger, WindowStats
from repro.core.consistency import ConsistencyChecker, ConsistencyReport, PrefixConsistency
from repro.core.hitlist import Hitlist, HitlistEntry, HitlistService, DailyHitlist
from repro.core.bias import top_x_fractions, concentration_index, coverage_stats

__all__ = [
    "EntropyFingerprint",
    "entropy_fingerprint",
    "grouped_nybble_entropies",
    "nybble_entropies",
    "EntropyClustering",
    "ClusteringResult",
    "KMeansResult",
    "kmeans",
    "elbow_k",
    "AliasedPrefixDetector",
    "APDConfig",
    "APDResult",
    "PrefixProbeOutcome",
    "MurdockDetector",
    "MurdockResult",
    "SlidingWindowMerger",
    "WindowStats",
    "ConsistencyChecker",
    "ConsistencyReport",
    "PrefixConsistency",
    "Hitlist",
    "HitlistEntry",
    "HitlistService",
    "DailyHitlist",
    "top_x_fractions",
    "concentration_index",
    "coverage_stats",
]
