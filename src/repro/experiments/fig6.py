"""Figure 6: ICMP responses per BGP prefix after de-aliasing.

A zesplot of all announced prefixes coloured by the number of (non-aliased)
ICMP echo responses.  The paper's observations: most prefixes that contained
hitlist input also yield responses (the response plot looks like the input
plot of Figure 1c with a smaller colour range), responses spread over
thousands of prefixes and ASes, and a few prefixes contribute very large
response counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.addr.batch import AddressBatch
from repro.core.bias import coverage_stats
from repro.experiments.context import ExperimentContext
from repro.netmodel.services import Protocol
from repro.plotting.zesplot import ZesplotLayout, zesplot_layout


@dataclass(slots=True)
class Fig6Result:
    """Response-per-prefix zesplot plus coverage statistics."""

    zesplot: ZesplotLayout
    responsive_addresses: int
    covered_prefixes: int
    covered_ases: int
    announced_prefixes: int
    input_covered_prefixes: int

    @property
    def response_prefix_share(self) -> float:
        """Share of announced prefixes with at least one responsive address."""
        if not self.announced_prefixes:
            return 0.0
        return self.covered_prefixes / self.announced_prefixes

    @property
    def responses_track_input(self) -> float:
        """Share of input-covered prefixes that also yield responses."""
        if not self.input_covered_prefixes:
            return 0.0
        return self.covered_prefixes / self.input_covered_prefixes


def run(ctx: ExperimentContext) -> Fig6Result:
    """Lay out ICMP responders (non-aliased targets) over BGP prefixes."""
    responder_batch = AddressBatch.from_addresses(ctx.responsive_on(Protocol.ICMP)).sort()
    responders = responder_batch.to_addresses()
    counts = ctx.bgp_prefix_counts(responder_batch)
    input_counts = ctx.bgp_prefix_counts(ctx.hitlist.address_batch)
    stats = coverage_stats(responders, ctx.internet)
    layout = zesplot_layout(
        ctx.internet.bgp.prefixes,
        values={p: float(c) for p, c in counts.items()},
        asn_of=ctx.bgp_origin_map(),
        sized=False,
    )
    return Fig6Result(
        zesplot=layout,
        responsive_addresses=len(responders),
        covered_prefixes=stats.num_prefixes,
        covered_ases=stats.num_ases,
        announced_prefixes=len(ctx.internet.bgp),
        input_covered_prefixes=len(input_counts),
    )


def format_table(result: Fig6Result) -> str:
    """Summarise the response coverage."""
    return "\n".join(
        [
            f"ICMP-responsive (non-aliased) addresses: {result.responsive_addresses:,}",
            f"prefixes with responses:                 {result.covered_prefixes:,} of "
            f"{result.announced_prefixes:,} announced ({result.response_prefix_share:.1%})",
            f"ASes with responses:                     {result.covered_ases:,}",
            f"input prefixes also seen responding:     {result.responses_track_input:.1%}",
        ]
    )
