#!/usr/bin/env python3
"""Gate CI on benchmark regressions recorded in BENCH_*.json history files.

Each benchmark run appends one record to its ``BENCH_<name>.json`` history
(see ``benchmarks/conftest.py``), so the repository carries its own
performance timeline.  This script turns that timeline into a gate: for
every higher-is-better metric (``speedup`` and any ``*_per_sec`` key) the
newest record is compared against the **trailing median** of the prior
records, and a drop beyond the threshold (default 30%) fails the run.

The trailing median -- not the immediately preceding record -- is the
baseline so a single noisy historic record cannot mask (or manufacture) a
regression.  Files with too little history to form a stable baseline are
skipped, not failed: a brand-new benchmark needs ``--min-history`` records
(default 3, i.e. at least two baseline points) before the gate arms.

Usage::

    python scripts/check_bench_regression.py                # gate BENCH_*.json in repo root
    python scripts/check_bench_regression.py BENCH_apd.json # gate specific files
    python scripts/check_bench_regression.py --threshold 0.5 --min-history 5

Exit codes: 0 = no regression, 1 = regression detected, 2 = usage error
(unreadable/malformed history file).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Iterator, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Metrics where larger is better; anything else in a record (latencies,
#: raw seconds, metadata) is ignored.  ``throughput_dip`` ends in neither
#: suffix and is a ratio with its own benchmark assertion, so it is not
#: second-guessed here.
HIGHER_IS_BETTER_KEYS = ("speedup",)
HIGHER_IS_BETTER_SUFFIX = "_per_sec"


class HistoryError(ValueError):
    """A BENCH_*.json file is unreadable or not in the expected shape."""


def gated_metrics(record: dict) -> dict[str, float]:
    """The higher-is-better numeric metrics of one history record."""
    out: dict[str, float] = {}
    for key, value in record.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key in HIGHER_IS_BETTER_KEYS or key.endswith(HIGHER_IS_BETTER_SUFFIX):
            out[key] = float(value)
    return out


def load_history(path: Path) -> tuple[str, list[dict]]:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise HistoryError(f"{path}: cannot read history: {exc}") from exc
    history = data.get("history")
    if not isinstance(history, list) or not all(isinstance(r, dict) for r in history):
        raise HistoryError(f"{path}: missing or malformed 'history' list")
    return str(data.get("benchmark", path.stem)), history


def check_file(
    path: Path, *, threshold: float, min_history: int
) -> Iterator[tuple[str, str, bool]]:
    """Yield ``(metric, message, is_regression)`` for one history file."""
    name, history = load_history(path)
    if len(history) < min_history:
        yield (
            "-",
            f"{name}: only {len(history)} record(s), gate needs {min_history}; skipped",
            False,
        )
        return
    *baseline, newest = history
    newest_metrics = gated_metrics(newest)
    for metric, value in sorted(newest_metrics.items()):
        prior = [
            gated_metrics(rec)[metric] for rec in baseline if metric in gated_metrics(rec)
        ]
        if len(prior) < min_history - 1:
            yield (metric, f"{name}.{metric}: too few baseline points; skipped", False)
            continue
        median = statistics.median(prior)
        if median <= 0:
            yield (metric, f"{name}.{metric}: non-positive baseline median; skipped", False)
            continue
        floor = median * (1.0 - threshold)
        change = (value - median) / median
        if value < floor:
            yield (
                metric,
                f"{name}.{metric}: REGRESSION {value:.4g} vs trailing median "
                f"{median:.4g} ({change:+.1%}, allowed floor {floor:.4g})",
                True,
            )
        else:
            yield (
                metric,
                f"{name}.{metric}: ok {value:.4g} vs trailing median "
                f"{median:.4g} ({change:+.1%})",
                False,
            )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when the newest benchmark record regresses more than "
        "--threshold below the trailing median of its history."
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="BENCH_*.json files to gate (default: BENCH_*.json in the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="fractional drop from the trailing median that fails (default: 0.30)",
    )
    parser.add_argument(
        "--min-history",
        type=int,
        default=3,
        help="minimum records before the gate arms for a file (default: 3)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be in (0, 1)")
    if args.min_history < 2:
        parser.error("--min-history must be >= 2")
    files = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("check_bench_regression: no BENCH_*.json files found; nothing to gate")
        return 0
    regressions = 0
    try:
        for path in files:
            for _metric, message, is_regression in check_file(
                path, threshold=args.threshold, min_history=args.min_history
            ):
                print(message)
                regressions += int(is_regression)
    except HistoryError as exc:
        print(f"check_bench_regression: error: {exc}", file=sys.stderr)
        return 2
    if regressions:
        print(f"check_bench_regression: {regressions} regressed metric(s)")
        return 1
    print("check_bench_regression: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
