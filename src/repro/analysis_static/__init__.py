"""reprolint: AST-based invariant checking for the reproduction.

The correctness of this codebase rests on a handful of conventions that
ordinary linters cannot see:

* **R1 determinism** -- every random draw flows from an explicitly seeded
  generator and no hot path reads the wall clock, so that engine pairs are
  reproducible per seed and the differential fuzz oracle means something.
* **R2 snapshot immutability** -- published artefacts are frozen behind
  ``readonly_view``/``.readonly()``; a snapshot shared with concurrent
  readers is never mutated and never leaks a writable array view.
* **R3 lock discipline** -- attributes a class declares guarded (via a
  ``_GUARDED_BY`` class map) are only touched inside a ``with`` block on
  the declared lock.
* **R4 engine parity** -- every ``engine=`` entry point dispatches over both
  the fast and the reference engine family (via
  :func:`repro.core.engines.canonical_engine` or explicit dispatch), and
  unknown-engine errors list every accepted synonym.
* **R5 policy resolution** -- functions accepting an
  :class:`~repro.exec.ExecutionPolicy` route it through
  :func:`repro.exec.resolve_policy` instead of ad-hoc string compares on the
  raw ``.engine`` attribute, so synonym normalisation cannot be bypassed.

This package is a small rule-engine framework over Python :mod:`ast`
(per-file visitor dispatch, a rule registry, ``# reprolint: disable=RULE``
pragmas, JSON and human output, an exit-code contract) with those rule
families implemented on top.  Run it as ``python -m repro.analysis_static
src/`` or via ``scripts/reprolint.py``; CI fails on any new finding.
"""

from repro.analysis_static.engine import (
    Finding,
    LintContext,
    Rule,
    RULE_REGISTRY,
    SourceFile,
    lint_paths,
    register_rule,
)

# Importing the rule modules registers their rules.
from repro.analysis_static import rules_determinism  # noqa: F401
from repro.analysis_static import rules_immutability  # noqa: F401
from repro.analysis_static import rules_locks  # noqa: F401
from repro.analysis_static import rules_parity  # noqa: F401
from repro.analysis_static import rules_policy  # noqa: F401

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "RULE_REGISTRY",
    "SourceFile",
    "lint_paths",
    "register_rule",
]
