"""The zesplot layout algorithm.

A zesplot visualizes a *list of prefixes* (not the whole address space):

* prefixes are ordered by ``(prefix length, origin ASN)`` so that large
  prefixes land in the top-left corner, small ones in the bottom-right, and
  similarly sized prefixes of the same AS stay adjacent;
* rectangles are laid out with a squarified-treemap style space-filling
  algorithm that alternates between filling a vertical row and a horizontal
  row (Bruls et al. squarified treemaps, extended recursively);
* in the *sized* variant the rectangle area follows the prefix size
  (logarithmically, since prefix sizes span dozens of orders of magnitude);
  in the *unsized* variant all rectangles are equal and the prefix size is
  used only for ordering;
* rectangles are coloured by a per-prefix value (e.g. number of addresses or
  responses) binned on a logarithmic scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.addr.prefix import IPv6Prefix


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle in the unit-less plot canvas."""

    x: float
    y: float
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect(self) -> float:
        """Aspect ratio >= 1 (1 = square)."""
        if self.width == 0 or self.height == 0:
            return math.inf
        return max(self.width / self.height, self.height / self.width)

    def contains_point(self, px: float, py: float) -> bool:
        return self.x <= px <= self.x + self.width and self.y <= py <= self.y + self.height


@dataclass(slots=True)
class ZesplotItem:
    """One plotted prefix: geometry, value and colour bin."""

    prefix: IPv6Prefix
    asn: int
    value: float
    rect: Rect
    color_bin: int = 0


@dataclass(slots=True)
class ZesplotLayout:
    """The full layout: items in plot order plus canvas dimensions."""

    width: float
    height: float
    items: list[ZesplotItem] = field(default_factory=list)
    num_color_bins: int = 5

    def item_at(self, x: float, y: float) -> ZesplotItem | None:
        """The item whose rectangle contains the given point (if any)."""
        for item in self.items:
            if item.rect.contains_point(x, y):
                return item
        return None

    def total_area(self) -> float:
        return sum(item.rect.area for item in self.items)

    def max_value(self) -> float:
        return max((item.value for item in self.items), default=0.0)


def _prefix_weight(prefix: IPv6Prefix, sized: bool) -> float:
    """Relative area weight of a prefix.

    Sized zesplots scale the area with the prefix size; a logarithmic scale
    keeps /19s and /127s on the same canvas.
    """
    if not sized:
        return 1.0
    # /128 -> 1, /64 -> 65, /32 -> 97, /0 -> 129 (linear in "bits of space").
    return float(129 - prefix.length)


def color_bins(values: Sequence[float], num_bins: int = 5) -> list[int]:
    """Assign each value a logarithmic colour bin in ``0..num_bins-1``.

    Zero values stay in bin 0; the remaining values are binned by log scale
    between the smallest and largest positive value (like the zesplot colour
    bars "1 .. 5M").
    """
    positives = [v for v in values if v > 0]
    if not positives:
        return [0 for _ in values]
    low = math.log10(min(positives))
    high = math.log10(max(positives))
    span = (high - low) or 1.0
    bins = []
    for value in values:
        if value <= 0:
            bins.append(0)
            continue
        fraction = (math.log10(value) - low) / span
        bins.append(min(num_bins - 1, int(fraction * (num_bins - 1) + 0.5)))
    return bins


def _layout_row(
    weights: Sequence[float], rect: Rect, vertical: bool
) -> tuple[list[Rect], Rect]:
    """Lay out one row of rectangles along the short side of *rect*.

    Returns the rectangles plus the remaining free space.
    """
    total_weight = sum(weights)
    if total_weight <= 0 or rect.area <= 0:
        return [Rect(rect.x, rect.y, 0.0, 0.0) for _ in weights], rect
    row_area_fraction = total_weight  # caller pre-scales weights to areas
    if vertical:
        # Fill a vertical strip on the left of the free rectangle.
        strip_width = min(rect.width, row_area_fraction / rect.height)
        rects = []
        y = rect.y
        for weight in weights:
            h = (weight / total_weight) * rect.height
            rects.append(Rect(rect.x, y, strip_width, h))
            y += h
        remaining = Rect(rect.x + strip_width, rect.y, rect.width - strip_width, rect.height)
    else:
        strip_height = min(rect.height, row_area_fraction / rect.width)
        rects = []
        x = rect.x
        for weight in weights:
            w = (weight / total_weight) * rect.width
            rects.append(Rect(x, rect.y, w, strip_height))
            x += w
        remaining = Rect(rect.x, rect.y + strip_height, rect.width, rect.height - strip_height)
    return rects, remaining


def zesplot_layout(
    prefixes: Iterable[IPv6Prefix],
    values: "Callable[[IPv6Prefix], float] | dict[IPv6Prefix, float]",
    asn_of: "Callable[[IPv6Prefix], int] | dict[IPv6Prefix, int] | None" = None,
    width: float = 100.0,
    height: float = 60.0,
    sized: bool = True,
    row_fraction: float = 0.2,
    num_color_bins: int = 5,
) -> ZesplotLayout:
    """Compute a zesplot layout for a set of prefixes.

    Parameters
    ----------
    prefixes:
        The prefixes to plot (e.g. all announced BGP prefixes).
    values:
        Per-prefix colour value (e.g. hitlist addresses or responses per
        prefix), as a mapping or callable.
    asn_of:
        Origin AS per prefix, used for the secondary sort key.
    sized:
        Sized (area follows prefix length) or unsized (equal boxes) variant.
    row_fraction:
        Fraction of the remaining items placed in each alternating row; the
        paper's tool fills rows until the aspect ratio degrades, this
        implementation uses a fixed fraction which produces the same
        "vertical row, then horizontal row, then vertical row" pattern.
    """
    prefix_list = list(prefixes)
    if isinstance(values, dict):
        value_fn = lambda p: float(values.get(p, 0.0))  # noqa: E731
    else:
        value_fn = values
    if asn_of is None:
        asn_fn = lambda p: 0  # noqa: E731
    elif isinstance(asn_of, dict):
        asn_fn = lambda p: int(asn_of.get(p, 0))  # noqa: E731
    else:
        asn_fn = asn_of

    # Order: shortest (largest) prefixes first, then by origin AS, then by value.
    ordered = sorted(prefix_list, key=lambda p: (p.length, asn_fn(p), p.network))
    weights = [_prefix_weight(p, sized) for p in ordered]
    total_weight = sum(weights) or 1.0
    canvas_area = width * height
    areas = [w / total_weight * canvas_area for w in weights]

    items: list[ZesplotItem] = []
    free = Rect(0.0, 0.0, width, height)
    index = 0
    vertical = True
    n = len(ordered)
    while index < n:
        remaining = n - index
        row_size = max(1, int(math.ceil(remaining * row_fraction)))
        row_slice = slice(index, index + row_size)
        rects, free = _layout_row(areas[row_slice], free, vertical)
        for prefix, rect in zip(ordered[row_slice], rects):
            items.append(ZesplotItem(prefix=prefix, asn=asn_fn(prefix), value=value_fn(prefix), rect=rect))
        index += row_size
        vertical = not vertical

    bins = color_bins([item.value for item in items], num_color_bins)
    for item, bin_index in zip(items, bins):
        item.color_bin = bin_index
    return ZesplotLayout(width=width, height=height, items=items, num_color_bins=num_color_bins)
