"""Hitlist assembly, de-aliasing and the daily hitlist service.

This module ties the pipeline of Section 6 together:

1. collect addresses from all sources (:mod:`repro.sources`),
2. run multi-level aliased prefix detection and remove targets inside aliased
   prefixes (:mod:`repro.core.apd`),
3. probe the remaining targets on all five protocols with the ZMap-style
   scanner (:mod:`repro.probing.zmap`),
4. publish the day's responsive addresses and aliased prefix list -- the two
   artefacts the paper's public hitlist service provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.addr.address import IPv6Address
from repro.addr.batch import AddressBatch
from repro.addr.prefix import IPv6Prefix
from repro.core.apd import AliasedPrefixDetector, APDConfig, APDResult
from repro.core.bias import CoverageStats, coverage_stats
from repro.netmodel.internet import SimulatedInternet
from repro.netmodel.services import ALL_PROTOCOLS, Protocol
from repro.probing.scheduler import DailyScanResult, ScanScheduler
from repro.sources.base import HitlistSource
from repro.sources.registry import SourceAssembly


@dataclass(slots=True)
class HitlistEntry:
    """One hitlist address with provenance."""

    address: IPv6Address
    sources: set[str] = field(default_factory=set)
    first_seen_day: int = 0


class Hitlist:
    """A set of candidate scan targets with provenance and curation helpers.

    Entries are kept in a dict for provenance merging; the columnar
    :attr:`address_batch` view is materialised lazily (and invalidated on
    mutation) so that curation steps -- APD candidate aggregation,
    de-aliasing, entropy fingerprints -- run on numpy arrays instead of
    per-address Python objects.
    """

    def __init__(self, entries: Iterable[HitlistEntry] = ()):
        self._entries: dict[int, HitlistEntry] = {}
        self._batch: AddressBatch | None = None
        for entry in entries:
            self.add(entry.address, entry.sources, entry.first_seen_day)

    # -- construction -----------------------------------------------------------

    def add(
        self, address: IPv6Address, sources: Iterable[str] = (), first_seen_day: int = 0
    ) -> None:
        """Add an address (merging provenance if already present)."""
        entry = self._entries.get(address.value)
        if entry is None:
            self._entries[address.value] = HitlistEntry(
                address=address, sources=set(sources), first_seen_day=first_seen_day
            )
            self._batch = None
        else:
            entry.sources.update(sources)
            entry.first_seen_day = min(entry.first_seen_day, first_seen_day)

    @classmethod
    def from_assembly(cls, assembly: SourceAssembly, day: int | None = None) -> "Hitlist":
        """Build a hitlist from every source's snapshot up to *day*."""
        hitlist = cls()
        for source in assembly.sources:
            for record in source.records:
                if day is not None and record.first_seen_day > day:
                    continue
                hitlist.add(record.address, {source.name}, record.first_seen_day)
        return hitlist

    @classmethod
    def from_sources(cls, sources: Sequence[HitlistSource], day: int | None = None) -> "Hitlist":
        """Build a hitlist from an explicit list of sources."""
        hitlist = cls()
        for source in sources:
            for record in source.records:
                if day is not None and record.first_seen_day > day:
                    continue
                hitlist.add(record.address, {source.name}, record.first_seen_day)
        return hitlist

    # -- access -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: IPv6Address) -> bool:
        return address.value in self._entries

    def __iter__(self):
        return iter(self.addresses)

    @property
    def addresses(self) -> list[IPv6Address]:
        """All hitlist addresses."""
        return [entry.address for entry in self._entries.values()]

    @property
    def address_batch(self) -> AddressBatch:
        """All hitlist addresses as a columnar batch (cached until mutation)."""
        if self._batch is None:
            self._batch = AddressBatch.from_ints(list(self._entries))
        return self._batch

    @property
    def entries(self) -> list[HitlistEntry]:
        return list(self._entries.values())

    def entry(self, address: IPv6Address) -> HitlistEntry | None:
        return self._entries.get(address.value)

    def by_source(self, source: str) -> list[IPv6Address]:
        """Addresses contributed (possibly among others) by one source."""
        return [e.address for e in self._entries.values() if source in e.sources]

    # -- curation -------------------------------------------------------------------

    def split_aliased(self, apd: APDResult) -> tuple[list[IPv6Address], list[IPv6Address]]:
        """Split into (aliased, non-aliased) using the APD filter (batch LPM)."""
        return apd.split(self.addresses, batch=self.address_batch)

    def non_aliased(self, apd: APDResult) -> list[IPv6Address]:
        """Scan targets after removing addresses in aliased prefixes."""
        return self.split_aliased(apd)[1]

    def coverage(self, internet: SimulatedInternet) -> CoverageStats:
        """AS/prefix coverage of the full hitlist."""
        return coverage_stats(self.addresses, internet)


@dataclass(slots=True)
class DailyHitlist:
    """The published artefacts of one day of the hitlist service."""

    day: int
    input_addresses: int
    aliased_prefixes: list[IPv6Prefix]
    scan_targets: list[IPv6Address]
    scan_result: DailyScanResult
    apd_result: APDResult

    @property
    def responsive_addresses(self) -> set[IPv6Address]:
        """Addresses responsive on at least one protocol (the published list)."""
        return self.scan_result.responsive_any

    def responsive_on(self, protocol: Protocol) -> set[IPv6Address]:
        """Addresses responsive on one protocol."""
        return self.scan_result.responsive_on(protocol)

    @property
    def aliased_share(self) -> float:
        """Fraction of input addresses removed by de-aliasing."""
        if not self.input_addresses:
            return 0.0
        return 1.0 - len(self.scan_targets) / self.input_addresses


class HitlistService:
    """The daily IPv6 hitlist service (Section 11).

    Composes source collection, APD and responsiveness scanning into the
    daily loop the paper runs for six months, and keeps per-day outputs.
    """

    def __init__(
        self,
        internet: SimulatedInternet,
        assembly: SourceAssembly,
        apd_config: APDConfig = APDConfig(),
        protocols: Sequence[Protocol] = ALL_PROTOCOLS,
        seed: int = 0,
    ):
        self.internet = internet
        self.assembly = assembly
        self.apd_config = apd_config
        self.protocols = tuple(protocols)
        self._seed = seed
        self.history: dict[int, DailyHitlist] = {}

    def run_day(self, day: int) -> DailyHitlist:
        """Run the full pipeline for one day and record the outcome."""
        hitlist = Hitlist.from_assembly(self.assembly, day=None)
        addresses = hitlist.addresses
        detector = AliasedPrefixDetector(
            self.internet, self.apd_config, seed=self._seed ^ (day * 0x45D9F3B)
        )
        apd_result = detector.run(addresses, day=day)
        targets = apd_result.filter_non_aliased(addresses)
        scheduler = ScanScheduler(self.internet, self.protocols, seed=self._seed ^ day)
        scan_result = scheduler.run_day(targets, day)
        daily = DailyHitlist(
            day=day,
            input_addresses=len(addresses),
            aliased_prefixes=apd_result.aliased_prefixes,
            scan_targets=targets,
            scan_result=scan_result,
            apd_result=apd_result,
        )
        self.history[day] = daily
        return daily

    def run_days(self, days: Sequence[int]) -> list[DailyHitlist]:
        """Run the daily pipeline for several days."""
        return [self.run_day(day) for day in days]

    def responsive_over_time(self, protocol: Protocol | None = None) -> Mapping[int, int]:
        """Number of responsive addresses per day (for longitudinal views)."""
        counts: dict[int, int] = {}
        for day, daily in sorted(self.history.items()):
            if protocol is None:
                counts[day] = len(daily.responsive_addresses)
            else:
                counts[day] = len(daily.responsive_on(protocol))
        return counts
