"""One construction path from a scenario to any pipeline object.

The ``from_scenario`` constructors on :class:`ExperimentContext`,
:class:`HitlistService`, :class:`HitlistServer` and
:class:`GenerationPipeline` used to each re-derive the scenario wiring
(experiment config, substrate, APD floor) independently; they now all
delegate here, and CLI / benchmarks / tests can call :func:`build` directly:

    service = scenarios.build("service", "megascale",
                              policy=ExecutionPolicy(chunk_rows=65536))

*policy* is anything :func:`repro.exec.resolve_policy` accepts -- an
:class:`~repro.exec.ExecutionPolicy`, ``None`` for the defaults, or a
deprecated bare engine string.
"""

from __future__ import annotations

from typing import Any

from repro.exec import ExecutionPolicy, resolve_policy
from repro.scenarios.registry import as_scenario

#: Buildable targets, in rough dependency order.
BUILD_TARGETS = (
    "internet",
    "substrate",
    "context",
    "service",
    "server",
    "pipeline",
)


def build(
    target: str,
    scenario: "str | object",
    *,
    scale: str | None = None,
    anomalies: str | None = None,
    seed: int | None = None,
    policy: "ExecutionPolicy | str | None" = None,
    **kwargs: Any,
):
    """Construct *target* for a scenario preset under one execution policy.

    ``target`` is one of :data:`BUILD_TARGETS`; ``scale`` / ``anomalies``
    compose named tiers on top of the preset and ``seed`` overrides the
    scenario seed, exactly as in the ``from_scenario`` constructors this
    helper subsumes.  Extra keyword arguments are forwarded to the target's
    constructor (e.g. ``protocols=`` for the service, ``validate_hook=`` for
    the server).
    """
    resolved = as_scenario(scenario, scale=scale, anomalies=anomalies)
    policy = resolve_policy(engine=policy)
    if target == "internet":
        return resolved.build_internet(seed=seed)
    if target == "substrate":
        return resolved.build_substrate(seed=seed)
    if target == "context":
        from repro.experiments.context import ExperimentContext

        return ExperimentContext(
            resolved.experiment_config(seed=seed), engine=policy, **kwargs
        )
    if target == "service":
        from repro.core.apd import APDConfig
        from repro.core.hitlist import HitlistService

        config = resolved.experiment_config(seed=seed)
        internet, assembly = resolved.build_substrate(seed=seed)
        return HitlistService(
            internet,
            assembly,
            apd_config=APDConfig(min_targets_per_prefix=config.apd_min_targets),
            seed=config.seed,
            engine=policy,
            **kwargs,
        )
    if target == "server":
        from repro.serving.server import HitlistServer

        validate_hook = kwargs.pop("validate_hook", None)
        service = build(
            "service",
            resolved,
            seed=seed,
            policy=policy,
            **kwargs,
        )
        return HitlistServer(service, validate_hook=validate_hook)
    if target == "pipeline":
        from repro.genaddr.pipeline import GenerationPipeline

        config = resolved.experiment_config(seed=seed)
        return GenerationPipeline(
            resolved.build_internet(seed=seed),
            seed=config.seed,
            engine=policy,
            **kwargs,
        )
    raise ValueError(
        f"unknown build target: {target!r} (expected one of {list(BUILD_TARGETS)})"
    )
