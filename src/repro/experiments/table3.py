"""Table 3: the APD fan-out example.

The paper illustrates multi-level APD with the prefix
``2001:db8:407:8000::/64``: one pseudo-random address is generated in each of
the 16 subprefixes ``2001:db8:407:8000:[0-f]000::/68``.  This experiment
regenerates that example and checks the defining properties (16 targets, one
per nybble branch, all inside the prefix).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.addr.address import IPv6Address
from repro.addr.generate import fanout_targets
from repro.addr.prefix import IPv6Prefix
from repro.experiments.context import ExperimentContext

EXAMPLE_PREFIX = IPv6Prefix.parse("2001:db8:407:8000::/64")


@dataclass(slots=True)
class Table3Result:
    """The example prefix and its 16 fan-out targets."""

    prefix: IPv6Prefix
    targets: list[IPv6Address]

    @property
    def branch_nybbles(self) -> list[str]:
        """The first IID nybble of each target (must enumerate 0..f)."""
        return [t.nybbles[16] for t in self.targets]

    @property
    def covers_all_branches(self) -> bool:
        return sorted(self.branch_nybbles) == list("0123456789abcdef")

    @property
    def all_inside_prefix(self) -> bool:
        return all(t in self.prefix for t in self.targets)


def run(ctx: ExperimentContext, prefix: IPv6Prefix = EXAMPLE_PREFIX) -> Table3Result:
    """Generate the fan-out targets for the example prefix."""
    rng = random.Random(ctx.config.seed)
    return Table3Result(prefix=prefix, targets=fanout_targets(prefix, rng))


def format_table(result: Table3Result) -> str:
    """Render the example like the paper's Table 3."""
    lines = [str(result.prefix)]
    lines.extend(f"  {target.exploded}" for target in result.targets)
    return "\n".join(lines)
