"""Tests for repro.addr.prefix."""

import pytest
from hypothesis import given, strategies as st

from repro.addr import IPv6Address, IPv6Prefix, parse_prefix, summarize_max_prefix
from repro.addr.prefix import group_by_prefix


class TestConstruction:
    def test_parse(self):
        p = IPv6Prefix.parse("2001:db8::/32")
        assert p.network == 0x20010DB8 << 96
        assert p.length == 32

    def test_parse_rejects_host_bits(self):
        with pytest.raises(ValueError):
            IPv6Prefix.parse("2001:db8::1/32")

    def test_of_clears_host_bits(self):
        p = IPv6Prefix.of("2001:db8::1", 32)
        assert p == IPv6Prefix.parse("2001:db8::/32")

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            IPv6Prefix(0, 129)
        with pytest.raises(ValueError):
            IPv6Prefix(0, -1)

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            IPv6Prefix(1, 64)

    def test_parse_prefix_helper(self):
        p = IPv6Prefix.parse("2001:db8::/48")
        assert parse_prefix(p) is p
        assert parse_prefix("2001:db8::/48") == p


class TestMasksAndBounds:
    def test_num_addresses(self):
        assert IPv6Prefix.parse("2001:db8::/127").num_addresses == 2
        assert IPv6Prefix.parse("::/0").num_addresses == 2**128

    def test_first_last(self):
        p = IPv6Prefix.parse("2001:db8::/126")
        assert p.first == IPv6Address.parse("2001:db8::")
        assert p.last == IPv6Address.parse("2001:db8::3")

    def test_netmask_hostmask_complement(self):
        p = IPv6Prefix.parse("2001:db8::/64")
        assert p.netmask ^ p.hostmask == 2**128 - 1


class TestRelations:
    def test_contains_address(self):
        p = IPv6Prefix.parse("2001:db8::/32")
        assert "2001:db8:1234::1" in p
        assert IPv6Address.parse("2001:db9::1") not in p

    def test_contains_prefix(self):
        outer = IPv6Prefix.parse("2001:db8::/32")
        inner = IPv6Prefix.parse("2001:db8:1::/48")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_overlaps(self):
        a = IPv6Prefix.parse("2001:db8::/32")
        b = IPv6Prefix.parse("2001:db8:ffff::/48")
        c = IPv6Prefix.parse("2001:db9::/32")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_supernet(self):
        p = IPv6Prefix.parse("2001:db8:1::/48")
        assert p.supernet(32) == IPv6Prefix.parse("2001:db8::/32")
        with pytest.raises(ValueError):
            p.supernet(64)


class TestEnumeration:
    def test_subnets_nybble_step(self):
        p = IPv6Prefix.parse("2001:db8:407:8000::/64")
        subs = list(p.subnets(68))
        assert len(subs) == 16
        assert subs[0].first.nybbles[16] == "0"
        assert subs[15].first.nybbles[16] == "f"

    def test_nth_subnet_matches_enumeration(self):
        p = IPv6Prefix.parse("2001:db8::/60")
        subs = list(p.subnets(64))
        for i, sub in enumerate(subs):
            assert p.nth_subnet(64, i) == sub

    def test_nth_subnet_out_of_range(self):
        p = IPv6Prefix.parse("2001:db8::/64")
        with pytest.raises(IndexError):
            p.nth_subnet(68, 16)

    def test_subnets_shorter_raises(self):
        with pytest.raises(ValueError):
            list(IPv6Prefix.parse("2001:db8::/64").subnets(60))

    def test_address_at(self):
        p = IPv6Prefix.parse("2001:db8::/64")
        assert p.address_at(5) == IPv6Address.parse("2001:db8::5")
        with pytest.raises(IndexError):
            IPv6Prefix.parse("2001:db8::/127").address_at(2)


class TestOrderingAndText:
    def test_str(self):
        assert str(IPv6Prefix.parse("2001:db8::/32")) == "2001:db8::/32"

    def test_sort_groups_specifics_after_covering(self):
        a = IPv6Prefix.parse("2001:db8::/32")
        b = IPv6Prefix.parse("2001:db8::/48")
        c = IPv6Prefix.parse("2001:db8:1::/48")
        assert sorted([c, b, a]) == [a, b, c]

    def test_hashable(self):
        assert len({IPv6Prefix.parse("2001:db8::/32"), IPv6Prefix.of(0x20010DB8 << 96, 32)}) == 1


class TestSummarize:
    def test_single_address(self):
        p = summarize_max_prefix(["2001:db8::1"])
        assert p.length == 128

    def test_two_adjacent(self):
        p = summarize_max_prefix(["2001:db8::0", "2001:db8::1"])
        assert p == IPv6Prefix.parse("2001:db8::/127")

    def test_spread(self):
        p = summarize_max_prefix(["2001:db8::1", "2001:db8::ffff"])
        assert p == IPv6Prefix.parse("2001:db8::/112")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_max_prefix([])

    @given(st.lists(st.integers(min_value=0, max_value=2**128 - 1), min_size=1, max_size=20))
    def test_summary_covers_all(self, values):
        prefix = summarize_max_prefix(values)
        assert all(v in prefix for v in values)


class TestGrouping:
    def test_group_by_prefix(self):
        addrs = ["2001:db8::1", "2001:db8::2", "2001:db9::1"]
        groups = group_by_prefix(addrs, 32)
        assert len(groups) == 2
        assert len(groups[IPv6Prefix.parse("2001:db8::/32")]) == 2

    def test_group_preserves_addresses(self):
        addrs = ["2001:db8::1", "2001:db8:0:1::1"]
        groups = group_by_prefix(addrs, 64)
        total = sum(len(v) for v in groups.values())
        assert total == 2
