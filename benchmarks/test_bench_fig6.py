"""Benchmark / regeneration harness for Figure 6 (responses per BGP prefix)."""

from benchmarks.conftest import run_once
from repro.experiments import fig6


def test_bench_fig6(benchmark, ctx):
    result = run_once(benchmark, lambda: fig6.run(ctx))
    print("\n" + fig6.format_table(result))
    assert result.responsive_addresses > 500
    # Responses spread over a substantial share of announced prefixes and many ASes.
    assert result.covered_ases > 30
    assert 0 < result.covered_prefixes <= result.announced_prefixes
    # A substantial share of prefixes that contained input addresses also
    # yields ICMP responses (the paper calls the two plots "strikingly
    # similar"; at simulation scale many input prefixes hold only a handful of
    # client addresses, so the share is lower in absolute terms).
    assert result.responses_track_input > 0.3
    assert len(result.zesplot.items) == result.announced_prefixes
