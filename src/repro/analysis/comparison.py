"""Comparisons between detection approaches and between sources.

Section 5.5 quantifies the advantage of multi-level APD over Murdock et al.'s
static /96 approach along two axes: how many hitlist addresses each approach
places inside aliased prefixes, and how many addresses each approach has to
probe.  This module computes that comparison plus generic overlap statistics
between address sets (used for rDNS and generated-address analyses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.addr.address import IPv6Address
from repro.core.apd import APDResult
from repro.core.apd_murdock import MurdockResult


@dataclass(frozen=True, slots=True)
class APDComparison:
    """Section 5.5 accounting: multi-level APD vs the /96 baseline."""

    hitlist_size: int
    apd_aliased_addresses: int
    murdock_aliased_addresses: int
    #: Addresses classified aliased by APD but missed by the baseline.
    only_apd: int
    #: Addresses classified aliased by the baseline but not by APD.
    only_murdock: int
    apd_addresses_probed: int
    murdock_addresses_probed: int
    apd_probes_sent: int
    murdock_probes_sent: int

    @property
    def probe_budget_ratio(self) -> float:
        """Murdock probed addresses / APD probed addresses (paper: > 2x)."""
        if not self.apd_addresses_probed:
            return 0.0
        return self.murdock_addresses_probed / self.apd_addresses_probed


def compare_apd_approaches(
    hitlist: Sequence[IPv6Address],
    apd_result: APDResult,
    murdock_result: MurdockResult,
) -> APDComparison:
    """Compute the Section 5.5 comparison for one hitlist."""
    apd_aliased = {a for a in hitlist if apd_result.is_aliased(a)}
    murdock_aliased = {a for a in hitlist if murdock_result.is_aliased(a)}
    return APDComparison(
        hitlist_size=len(hitlist),
        apd_aliased_addresses=len(apd_aliased),
        murdock_aliased_addresses=len(murdock_aliased),
        only_apd=len(apd_aliased - murdock_aliased),
        only_murdock=len(murdock_aliased - apd_aliased),
        apd_addresses_probed=apd_result.addresses_probed,
        murdock_addresses_probed=murdock_result.addresses_probed,
        apd_probes_sent=apd_result.probes_sent,
        murdock_probes_sent=murdock_result.probes_sent,
    )


@dataclass(frozen=True, slots=True)
class OverlapStats:
    """Overlap between two address sets."""

    size_a: int
    size_b: int
    overlap: int
    new_in_b: int

    @property
    def jaccard(self) -> float:
        union = self.size_a + self.size_b - self.overlap
        return self.overlap / union if union else 0.0

    @property
    def share_new_in_b(self) -> float:
        return self.new_in_b / self.size_b if self.size_b else 0.0


def overlap_stats(set_a: Iterable[IPv6Address], set_b: Iterable[IPv6Address]) -> OverlapStats:
    """How much of B is new relative to A (e.g. rDNS vs the hitlist)."""
    a = {x.value for x in set_a}
    b = {x.value for x in set_b}
    overlap = len(a & b)
    return OverlapStats(size_a=len(a), size_b=len(b), overlap=overlap, new_in_b=len(b - a))
