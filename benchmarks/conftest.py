"""Shared fixtures for the benchmark harness.

All per-table/figure benchmarks share one :class:`ExperimentContext` at the
default experiment scale, so the expensive pipeline steps (Internet build,
source assembly, APD, day-0 sweep) run once per session.  Each benchmark then
measures its experiment's analysis step with a single pedantic round -- the
point is regenerating the paper's numbers, not micro-timing.
"""

import pytest

from repro.experiments.context import DEFAULT_EXPERIMENT_CONFIG, ExperimentContext


def pytest_addoption(parser):
    parser.addoption(
        "--repro-hitlist-target",
        action="store",
        default=None,
        type=int,
        help="Override the hitlist input size used by the benchmark context.",
    )


@pytest.fixture(scope="session")
def ctx(request) -> ExperimentContext:
    """The shared default-scale experiment context."""
    override = request.config.getoption("--repro-hitlist-target")
    config = DEFAULT_EXPERIMENT_CONFIG
    if override:
        from dataclasses import replace

        config = replace(config, hitlist_target=override)
    context = ExperimentContext(config)
    # Materialise the shared artefacts once, outside any benchmark timing.
    _ = context.hitlist
    _ = context.apd_result
    _ = context.day0_sweep
    return context


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, iterations=1, rounds=1)
