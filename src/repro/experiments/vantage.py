"""Section 5 vantage-point dependence, reproduced on the routed AS graph.

The paper probes the hitlist from a single vantage point and warns that
responsiveness is a property of the *path*, not only the destination:
congested transit links, upstream ICMP rate limiting and regional inbound
filtering all depend on where the probes enter the graph.  This experiment
rebuilds the experiment Internet with the routed topology enabled (same
seed, so hosts, addressing and announcements are unchanged), probes the
same hitlist from every vantage AS, and quantifies the bias:

* responsive sets differ between vantages (pairwise Jaccard < 1);
* the filtered region is visible almost exclusively to the vantage homed
  inside it -- an outside hitlist systematically under-covers that region.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.addr.batch import AddressBatch
from repro.experiments.context import ExperimentContext
from repro.netmodel.asgraph import REGIONS
from repro.netmodel.internet import SimulatedInternet

#: Routed-topology knobs of the experiment (composed over the context's
#: Internet configuration; the filtered region is REGIONS[2] = "apnic").
ROUTED_KNOBS: dict[str, object] = {
    "num_transit_ases": 5,
    "num_ixps": 2,
    "num_vantages": 3,
    "vantage_index": 0,
    "transit_congestion": 0.25,
    "upstream_rate_limit": 0.3,
    "filtered_region": 2,
}


@dataclass(slots=True)
class VantageBiasResult:
    """Per-vantage responsiveness of one hitlist over the routed graph."""

    vantage_asns: list[int]
    vantage_regions: list[int]
    filtered_region: int
    num_targets: int
    responsive_counts: list[int]
    #: Pairwise Jaccard similarity of the per-vantage responsive sets.
    jaccard: list[list[float]]
    #: ``region_responsive[v][r]`` = responsive targets of region *r* seen
    #: from vantage *v*; ``region_targets[r]`` = targets in region *r*.
    region_responsive: list[list[int]]
    region_targets: list[int]

    @property
    def min_jaccard(self) -> float:
        pairs = [
            self.jaccard[i][j]
            for i in range(len(self.jaccard))
            for j in range(i + 1, len(self.jaccard))
        ]
        return min(pairs) if pairs else 1.0

    @property
    def inside_vantage(self) -> int:
        """Index of the vantage homed inside the filtered region (-1: none)."""
        for v, region in enumerate(self.vantage_regions):
            if region == self.filtered_region:
                return v
        return -1

    @property
    def responsiveness_is_vantage_dependent(self) -> bool:
        """Do different vantages see different responsive sets?"""
        return self.min_jaccard < 1.0

    @property
    def filtered_region_needs_inside_vantage(self) -> bool:
        """Does the inside vantage out-cover every outside vantage there?"""
        inside = self.inside_vantage
        if inside < 0:
            return False
        region = self.filtered_region
        return all(
            self.region_responsive[inside][region] > self.region_responsive[v][region]
            for v in range(len(self.vantage_asns))
            if v != inside
        )


def run(ctx: ExperimentContext) -> VantageBiasResult:
    """Probe the context's hitlist from every vantage of the routed graph."""
    config = replace(
        ctx.config.internet_config(),
        # Deterministic substrate: the remaining per-probe randomness is the
        # routed path effects themselves, drawn from per-vantage seeds.
        packet_loss=0.0,
        icmp_rate_limited_share=0.0,
        stochastic_anomalies=False,
        **ROUTED_KNOBS,
    )
    internet = SimulatedInternet(config)
    routing = internet.routing
    graph = internet.asgraph
    targets = AddressBatch.from_addresses(ctx.hitlist.addresses)

    # Destination region per target, via the covering announcement's origin.
    flat = internet.bgp_lpm()
    ann_index = flat.lookup_indices(targets)
    rows = np.fromiter(
        (
            routing.row_of_asn(flat.objects[i].origin_asn) if i >= 0 else -1
            for i in ann_index.tolist()
        ),
        dtype=np.int64,
        count=len(ann_index),
    )
    row_region = np.fromiter(
        (graph.region_of(asn) for asn in routing.dest_asns),
        dtype=np.int64,
        count=len(routing.dest_asns),
    )
    target_region = np.where(rows >= 0, row_region[np.maximum(rows, 0)], np.int64(-1))
    region_targets = [int((target_region == r).sum()) for r in range(len(REGIONS))]

    num_vantages = len(routing.vantage_asns)
    responsive: list[np.ndarray] = []
    for vantage in range(num_vantages):
        result = internet.probe_batch(
            targets, day=0, rng=config.seed ^ (0xBA5 + vantage), vantage=vantage
        )
        responsive.append(result.responsive_any)
    jaccard = [
        [
            float((a & b).sum()) / max(1, int((a | b).sum()))
            for b in responsive
        ]
        for a in responsive
    ]
    region_responsive = [
        [int((mask & (target_region == r)).sum()) for r in range(len(REGIONS))]
        for mask in responsive
    ]
    return VantageBiasResult(
        vantage_asns=list(routing.vantage_asns),
        vantage_regions=[graph.region_of(asn) for asn in routing.vantage_asns],
        filtered_region=config.filtered_region,
        num_targets=len(targets),
        responsive_counts=[int(mask.sum()) for mask in responsive],
        jaccard=jaccard,
        region_responsive=region_responsive,
        region_targets=region_targets,
    )


def format_table(result: VantageBiasResult) -> str:
    """Render the per-vantage coverage table and bias statistics."""
    filtered = REGIONS[result.filtered_region]
    lines = [
        f"{result.num_targets} hitlist targets; filtered region: {filtered}",
        "vantage      region   responsive   " + "  ".join(f"{r:>7}" for r in REGIONS),
    ]
    for v, asn in enumerate(result.vantage_asns):
        counts = "  ".join(
            f"{result.region_responsive[v][r]:>7}" for r in range(len(REGIONS))
        )
        marker = " (inside)" if v == result.inside_vantage else ""
        lines.append(
            f"AS{asn:<10} {REGIONS[result.vantage_regions[v]]:<8} "
            f"{result.responsive_counts[v]:>10}   {counts}{marker}"
        )
    lines.append(
        "region targets:                   "
        + "  ".join(f"{count:>7}" for count in result.region_targets)
    )
    pairs = ", ".join(
        f"v{i}/v{j}={result.jaccard[i][j]:.3f}"
        for i in range(len(result.vantage_asns))
        for j in range(i + 1, len(result.vantage_asns))
    )
    lines.append(f"pairwise Jaccard of responsive sets: {pairs}")
    lines.append(
        f"vantage-dependent: {result.responsiveness_is_vantage_dependent}; "
        f"filtered region requires inside vantage: "
        f"{result.filtered_region_needs_inside_vantage}"
    )
    return "\n".join(lines)
