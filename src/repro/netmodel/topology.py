"""Router-level topology for traceroute simulation.

The scamper source of Section 3 grows explosively because traceroutes towards
hitlist targets reveal router and CPE addresses along the path -- 90.7 % of
them SLAAC (``ff:fe``) home-router addresses from ZTE and AVM devices.  The
topology model gives every announced prefix a router path from the single
measurement vantage point: a short backbone segment shared per upstream, a
couple of provider-core routers, and for eyeball networks a last-hop CPE with
an EUI-64 address.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.addr.address import IPv6Address
from repro.addr.prefix import IPv6Prefix
from repro.netmodel.asregistry import ASCategory
from repro.netmodel.vendors import CPE_VENDORS, eui64_iid_from_mac, pick_vendor, random_mac


@dataclass(frozen=True, slots=True)
class RouterPath:
    """The sequence of router addresses towards one destination prefix."""

    prefix: IPv6Prefix
    hops: tuple[IPv6Address, ...]

    @property
    def length(self) -> int:
        return len(self.hops)


@dataclass(frozen=True, slots=True)
class RoutedPath:
    """Router addresses towards one prefix, segmented per AS of the route.

    ``segments[i]`` holds the router addresses inside ``as_path[i + 1]`` (the
    vantage AS itself contributes no hops); the last segment is the
    destination AS, ending in a CPE for eyeball networks.  Keeping the AS
    boundary explicit lets traceroute truncate at a filter border and shed
    hops per rate-limited upstream.
    """

    prefix: IPv6Prefix
    as_path: tuple[int, ...]
    segments: tuple[tuple[IPv6Address, ...], ...]

    @property
    def hops(self) -> tuple[IPv6Address, ...]:
        return tuple(hop for segment in self.segments for hop in segment)

    @property
    def length(self) -> int:
        return sum(len(segment) for segment in self.segments)


class Topology:
    """Per-prefix router paths from the measurement vantage point."""

    #: Prefix in which synthetic backbone router addresses live.
    BACKBONE_PREFIX = IPv6Prefix.parse("2001:678:ffff::/48")

    #: Prefix in which per-transit router addresses of the routed AS graph
    #: live; the transit's ASN is encoded into the interface identifier.
    TRANSIT_PREFIX = IPv6Prefix.parse("2001:678:fffe::/48")

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._backbone: list[IPv6Address] = [
            IPv6Address(self.BACKBONE_PREFIX.network | (i + 1)) for i in range(24)
        ]
        self._paths: dict[IPv6Prefix, RouterPath] = {}
        self._routed_paths: dict[tuple[IPv6Prefix, tuple[int, ...]], RoutedPath] = {}

    def build_path(
        self, prefix: IPv6Prefix, category: ASCategory, allocation: IPv6Prefix
    ) -> RouterPath:
        """Create (and memoise) the router path towards *prefix*."""
        existing = self._paths.get(prefix)
        if existing is not None:
            return existing
        rng = self._rng
        hops: list[IPv6Address] = []
        # 2-4 shared backbone hops.
        start = rng.randrange(0, len(self._backbone) - 4)
        hops.extend(self._backbone[start : start + rng.randint(2, 4)])
        # 1-3 provider-core routers inside the destination allocation, using
        # low-counter infrastructure addressing.
        for i in range(rng.randint(1, 3)):
            hops.append(IPv6Address(allocation.network | (0xFFFF << 64) | (i + 1)))
        # Eyeball networks terminate in a CPE with an EUI-64 address.
        if category is ASCategory.EYEBALL_ISP:
            vendor = pick_vendor(rng, CPE_VENDORS)
            iid = eui64_iid_from_mac(random_mac(vendor, rng))
            subnet = rng.getrandbits(8)
            hops.append(IPv6Address(prefix.network | (subnet << 64) | iid))
        path = RouterPath(prefix=prefix, hops=tuple(hops))
        self._paths[prefix] = path
        return path

    def build_routed_path(
        self,
        prefix: IPv6Prefix,
        category: ASCategory,
        allocation: IPv6Prefix,
        as_path: tuple[int, ...],
        *,
        seed: int = 0,
    ) -> RoutedPath:
        """Create (and memoise) the router path along *as_path*.

        Unlike :meth:`build_path` this never consumes the shared topology
        stream: hop addresses are a pure function of (seed, prefix, AS path),
        so routes that flip between primary and alternate paths across days
        produce stable per-path hop sequences.
        """
        key = (prefix, as_path)
        existing = self._routed_paths.get(key)
        if existing is not None:
            return existing
        path_key = seed & 0xFFFFFFFF
        for asn in as_path:
            path_key = (path_key * 1000003 + asn) & 0xFFFFFFFFFFFF
        path_key ^= prefix.network >> 80
        rng = random.Random(path_key)
        segments: list[tuple[IPv6Address, ...]] = []
        # Intermediate ASes expose one or two deterministic transit routers.
        for asn in as_path[1:-1]:
            segments.append(
                tuple(
                    IPv6Address(self.TRANSIT_PREFIX.network | (asn << 32) | (i + 1))
                    for i in range(1 + (asn & 1))
                )
            )
        # Destination AS: provider-core routers inside the allocation, using
        # low-counter infrastructure addressing; eyeballs end in an EUI-64 CPE.
        dest_hops: list[IPv6Address] = [
            IPv6Address(allocation.network | (0xFFFF << 64) | (i + 1))
            for i in range(rng.randint(1, 3))
        ]
        if category is ASCategory.EYEBALL_ISP:
            vendor = pick_vendor(rng, CPE_VENDORS)
            iid = eui64_iid_from_mac(random_mac(vendor, rng))
            subnet = rng.getrandbits(8)
            dest_hops.append(IPv6Address(prefix.network | (subnet << 64) | iid))
        segments.append(tuple(dest_hops))
        path = RoutedPath(prefix=prefix, as_path=as_path, segments=tuple(segments))
        self._routed_paths[key] = path
        return path

    def path_for(self, prefix: IPv6Prefix) -> RouterPath | None:
        """Previously built path towards *prefix*, or None."""
        return self._paths.get(prefix)

    @property
    def backbone_routers(self) -> list[IPv6Address]:
        """The shared backbone router addresses."""
        return list(self._backbone)

    @property
    def known_paths(self) -> list[RouterPath]:
        """All paths built so far."""
        return list(self._paths.values())
