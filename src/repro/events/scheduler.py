"""A deterministic discrete-event scheduler over a simulated clock.

The service historically ticks in whole days, but the dynamics the paper's
measurements are shaped by -- ICMP rate limiters recovering between probe
waves, eyeball prefixes rotating mid-scan, two scanners competing for the
same token budgets -- happen on finer timescales.  :class:`EventScheduler`
is the substrate for all of them: a heap-based priority queue of
``(time, seq, action)`` entries over a simulated clock measured in
fractional days (``23.5`` is noon of day 23).

Determinism contract
--------------------

* Time never comes from a wall clock; callers pass simulated timestamps.
* Events with equal timestamps fire in the order they were scheduled: the
  monotonically increasing ``seq`` breaks heap ties, so execution order is a
  pure function of the schedule calls -- no identity-hash or insertion-map
  ordering leaks in.
* Actions may schedule further events (including at the currently running
  timestamp); :meth:`run_until` keeps draining until nothing at or before
  the horizon remains, so reentrant scheduling is deterministic too.
"""

from __future__ import annotations

import heapq
from typing import Callable


class EventScheduler:
    """A heap of timestamped actions executed in ``(time, seq)`` order."""

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self, start_time: float = 0.0):
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = float(start_time)

    @property
    def now(self) -> float:
        """The simulated clock, in fractional days (monotone)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, action: Callable[[], None]) -> int:
        """Enqueue *action* at simulated *time*; returns its tie-break seq.

        Scheduling in the past is allowed (the event fires on the next run
        call) -- backdated events are how a cold scheduler catches up after
        construction.
        """
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (float(time), seq, action))
        return seq

    def peek(self) -> float | None:
        """Timestamp of the next pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, time: float) -> int:
        """Fire every event with timestamp <= *time*; returns the count.

        The clock advances to each event's timestamp as it fires and ends at
        ``max(now, time)``.  Actions scheduling new events at or before
        *time* have those fired in the same call.
        """
        fired = 0
        while self._heap and self._heap[0][0] <= time:
            event_time, _, action = heapq.heappop(self._heap)
            if event_time > self._now:
                self._now = event_time
            action()
            fired += 1
        if time > self._now:
            self._now = time
        return fired

    def run_next(self) -> bool:
        """Fire exactly the next pending event; False when none remain."""
        if not self._heap:
            return False
        event_time, _, action = heapq.heappop(self._heap)
        if event_time > self._now:
            self._now = event_time
        action()
        return True

    def run_all(self) -> int:
        """Fire every pending event (including newly scheduled ones)."""
        fired = 0
        while self.run_next():
            fired += 1
        return fired
