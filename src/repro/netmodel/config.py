"""Configuration of the simulated Internet.

The paper measures 55.1 M addresses over 25.5 k BGP prefixes and 10.9 k ASes.
Reproducing the pipeline does not require that absolute scale -- every result
we reproduce is about *relative* structure (cluster mix, share of aliased
addresses, heavy-tailed AS distributions, per-source stability).  The
configuration therefore defaults to a laptop-scale Internet a few orders of
magnitude smaller, with knobs to scale it up.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class InternetConfig:
    """Parameters of :class:`repro.netmodel.internet.SimulatedInternet`.

    Parameters
    ----------
    seed:
        Master seed; every derived random stream is seeded from it.
    num_ases:
        Number of autonomous systems (notable operators + Zipf tail).
    base_hosts_per_allocation:
        Host count scale: an AS of weight 1 gets roughly this many hosts per
        allocation; heavier ASes proportionally more.
    max_hosts_per_allocation:
        Hard cap per allocation so single CDNs stay tractable.
    aliased_region_rate:
        Probability that a cloud/CDN allocation contains aliased /48 regions,
        and (scaled down) that a hoster contains an aliased /64.
    aliased_regions_per_cdn_allocation:
        How many aliased /48s a cloud allocation announces (the paper sees
        189 aliased /48s from Amazon alone).
    packet_loss:
        Per-probe loss probability applied on top of host behaviour.
    icmp_rate_limited_share:
        Fraction of prefixes whose ICMP responses are rate limited.
    modern_linux_share:
        Fraction of hosts with per-destination randomised TCP timestamps.
    study_days:
        Length of the simulated measurement campaign in days.
    client_daily_uptime / cpe_daily_uptime / server_daily_uptime:
        Baseline probability of being online on a given day per role family.
    deaggregation_rate:
        Probability that an allocation is announced as several more-specific
        /48s instead of one aggregate.
    eyeball_tail_boost:
        Multiplier on the eyeball-ISP share of the anonymous long-tail AS
        population.  1.0 keeps the default category mix; larger values tilt
        the tail towards client/CPE networks (the EUI-64 CPE-flood regime of
        Rye & Levin), smaller values towards server networks.
    stochastic_anomalies:
        Whether to register the Section 5.1 anomaly regions (SYN proxy /80,
        ICMP rate-limited /120s) whose replies are random per probe.  Turn
        off -- together with ``packet_loss`` and ``icmp_rate_limited_share``
        -- to build a fully deterministic Internet for exact batch/scalar
        parity runs.
    num_transit_ases:
        Number of tier-1 transit ASes in the routed AS-level topology
        (:mod:`repro.netmodel.asgraph`).  0 -- the default -- builds the
        degenerate single-homed graph: every AS hangs directly off the
        vantage point and probe resolution is bit-identical to the historical
        flat model (no path effects, no extra random draws).
    num_ixps:
        Number of IXP fabrics (peering cliques among transits, clouds and
        hosters).  Only meaningful with ``num_transit_ases > 0``.
    num_vantages:
        Number of measurement vantage ASes attached to the routed graph.
        Per-vantage dense path matrices are precomputed, so switching
        vantage costs nothing at probe time.
    vantage_index:
        Which vantage :meth:`~repro.netmodel.internet.SimulatedInternet.probe`
        and ``probe_batch`` use by default (taken modulo ``num_vantages``,
        so fuzzers can sample it independently).
    transit_congestion:
        Scale of per-edge congestion loss on inter-AS links.  A probe's
        delivery probability is the product of ``1 - congestion * weight``
        over the edges of its route; 0 disables congestion entirely (no
        random draws).  Stochastic: zeroed by the deterministic anomaly mix.
    upstream_rate_limit:
        Scale of per-AS upstream ICMP rate limiting.  Each transit AS holds
        a token pool sized against the share of destinations it serves from
        the active vantage, so heavily loaded upstreams shed more ICMP --
        emergent, not hand-set.  Stochastic: zeroed by the deterministic mix.
    filtered_region:
        Index into :data:`repro.netmodel.asgraph.REGIONS` of a region whose
        border filters inbound probes (deterministic drop on every protocol),
        or -1 for no filtering.  Probes from a vantage inside the region are
        not filtered -- the Section 5 vantage-point dependence.
    bgp_churn_rate:
        Per-day probability that a destination's route flips to its
        alternate path (a pure function of seed, day and destination, so
        churn is deterministic per day).  Churn never flips a destination's
        filtered status -- an AS does not switch onto a blackholed route --
        so probe outcomes stay day-stable under the deterministic mix.
    waves_per_day:
        Number of timestamped probe waves a daily scan is split into by the
        discrete-event layer (:mod:`repro.events`).  1 -- the default --
        keeps the historical whole-day tick: unless another sub-day knob is
        set, no event scheduler is built and every code path is
        bit-identical to the day-granular behaviour.
    icmp_bucket_capacity:
        Token-bucket capacity (in probes) of the deterministic ICMP rate
        limiters that replace the stateless Bernoulli draws when sub-day
        dynamics are on.  Each rate-limited prefix, anomaly region and
        transit pool gets a bucket scaled by its limit/allowance value; 0
        disables the buckets entirely (the degenerate case).
    icmp_bucket_refill_per_day:
        Token refill rate of those buckets, in probes per simulated day;
        limiters recover between probe waves at this rate (and fully
        overnight when it exceeds the daily drain).
    prefix_rotation_rate:
        Per-day probability that an eyeball CPE/client host rotates its
        delegated prefix (DHCPv6 churn).  A rotating host goes dark on its
        old addresses at a deterministic time within the day and answers on
        a fresh address in the same announced prefix -- mid-scan churn.
        Pure per-(host, day) hash, so both engines agree exactly; 0
        disables rotation.
    competing_scanners:
        Number of synthetic concurrent scanners charging the same ICMP
        token budgets ahead of each of our probe waves (the two-scanner
        interference regime).  0 -- the default -- models an uncontended
        measurement.
    """

    seed: int = 2018
    num_ases: int = 220
    base_hosts_per_allocation: int = 30
    max_hosts_per_allocation: int = 1200
    aliased_region_rate: float = 0.5
    aliased_regions_per_cdn_allocation: int = 6
    packet_loss: float = 0.015
    icmp_rate_limited_share: float = 0.02
    modern_linux_share: float = 0.45
    study_days: int = 30
    client_daily_uptime: float = 0.35
    cpe_daily_uptime: float = 0.80
    server_daily_uptime: float = 0.995
    deaggregation_rate: float = 0.25
    eyeball_tail_boost: float = 1.0
    stochastic_anomalies: bool = True
    num_transit_ases: int = 0
    num_ixps: int = 0
    num_vantages: int = 1
    vantage_index: int = 0
    transit_congestion: float = 0.0
    upstream_rate_limit: float = 0.0
    filtered_region: int = -1
    bgp_churn_rate: float = 0.0
    waves_per_day: int = 1
    icmp_bucket_capacity: float = 0.0
    icmp_bucket_refill_per_day: float = 0.0
    prefix_rotation_rate: float = 0.0
    competing_scanners: int = 0

    def scaled(self, factor: float) -> "InternetConfig":
        """A copy with host counts scaled by *factor* (same structure)."""
        return replace(
            self,
            base_hosts_per_allocation=max(1, int(self.base_hosts_per_allocation * factor)),
            max_hosts_per_allocation=max(4, int(self.max_hosts_per_allocation * factor)),
        )


#: Tiny Internet for unit tests: builds in well under a second.
SMALL_CONFIG = InternetConfig(num_ases=60, base_hosts_per_allocation=10, max_hosts_per_allocation=200)

#: Default experiment scale: thousands of prefixes, tens of thousands of hosts.
DEFAULT_CONFIG = InternetConfig()

#: Larger Internet for stress runs and scaling studies.
LARGE_CONFIG = InternetConfig(num_ases=600, base_hosts_per_allocation=60, max_hosts_per_allocation=4000)
