"""Scenario presets: named network environments for the whole pipeline.

The paper's findings hinge on structure that varies wildly across network
environments -- CDN-dominated aliasing, sparse source coverage, client churn,
heavy deaggregation -- yet a single default configuration exercises only one
point of that space.  A :class:`Scenario` is a named, composable description
of an environment: an ordered stack of :class:`ScenarioLayer` override maps
(base preset x scale tier x anomaly mix) that resolves to one
:class:`~repro.experiments.context.ExperimentConfig` (and, through it, one
:class:`~repro.netmodel.config.InternetConfig`).

Composition rules
-----------------

* A layer is a flat mapping ``field -> value``; fields must belong to
  ``InternetConfig`` or ``ExperimentConfig`` (validated at construction).
* Layers compose left to right: later layers win on conflicting fields.
  ``preset x scale x anomalies`` therefore means "the preset's structure, at
  that scale, under those stochastic conditions".
* Fields shared by both configs (``num_ases``, host counts, stochastic
  knobs) are set on the ``ExperimentConfig`` and flow into the derived
  ``InternetConfig``; Internet-only fields travel via
  ``ExperimentConfig.internet_overrides``.

Scenarios are frozen and hashable, so they can key caches and hypothesis
examples.  The module-level registry maps names to presets;
:func:`get_scenario` composes scale tiers and anomaly mixes at lookup time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.experiments.context import TEST_EXPERIMENT_CONFIG, ExperimentConfig
from repro.netmodel.config import InternetConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.context import ExperimentContext
    from repro.netmodel.internet import SimulatedInternet

_INTERNET_FIELDS = frozenset(f.name for f in dataclasses.fields(InternetConfig))
_EXPERIMENT_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ExperimentConfig) if f.name != "internet_overrides"
)
_ALL_FIELDS = _INTERNET_FIELDS | _EXPERIMENT_FIELDS


def _as_items(overrides: "Mapping[str, object] | Iterable[tuple[str, object]]"):
    items = tuple(sorted(dict(overrides).items()))
    unknown = [name for name, _ in items if name not in _ALL_FIELDS]
    if unknown:
        raise ValueError(
            f"unknown scenario knob(s) {unknown}: valid knobs are "
            f"InternetConfig/ExperimentConfig fields ({sorted(_ALL_FIELDS)})"
        )
    return items


@dataclass(frozen=True, slots=True)
class ScenarioLayer:
    """One composable slice of a scenario: a validated override map."""

    name: str
    overrides: tuple[tuple[str, object], ...]

    def __init__(
        self, name: str, overrides: "Mapping[str, object] | Iterable[tuple[str, object]]" = ()
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "overrides", _as_items(overrides))


@dataclass(frozen=True, slots=True)
class Scenario:
    """A named network environment: an ordered stack of override layers."""

    name: str
    description: str
    layers: tuple[ScenarioLayer, ...] = ()

    # -- composition ------------------------------------------------------------

    def with_layer(self, layer: ScenarioLayer) -> "Scenario":
        """A copy with *layer* appended (it wins on conflicting fields)."""
        return Scenario(self.name, self.description, self.layers + (layer,))

    def with_overrides(
        self, name: str, overrides: "Mapping[str, object] | Iterable[tuple[str, object]]"
    ) -> "Scenario":
        """A copy with an ad-hoc override layer appended."""
        return self.with_layer(ScenarioLayer(name, overrides))

    def at_scale(self, tier: str) -> "Scenario":
        """Compose a named scale tier (see :data:`SCALE_TIERS`) on top."""
        try:
            return self.with_layer(SCALE_TIERS[tier])
        except KeyError:
            raise ValueError(
                f"unknown scale tier: {tier!r} (expected one of {sorted(SCALE_TIERS)})"
            ) from None

    def with_anomalies(self, mix: str) -> "Scenario":
        """Compose a named anomaly mix (see :data:`ANOMALY_MIXES`) on top."""
        try:
            return self.with_layer(ANOMALY_MIXES[mix])
        except KeyError:
            raise ValueError(
                f"unknown anomaly mix: {mix!r} (expected one of {sorted(ANOMALY_MIXES)})"
            ) from None

    def deterministic(self) -> "Scenario":
        """This scenario under the deterministic anomaly mix.

        Zero packet loss, zero ICMP rate limiting, no stochastic anomaly
        regions: every probe outcome is a pure function of (target, protocol,
        day), the substrate of exact cross-engine parity.
        """
        return self.with_anomalies("deterministic")

    # -- resolution -------------------------------------------------------------

    def resolved_overrides(self) -> dict[str, object]:
        """All layers merged left to right (later layers win)."""
        merged: dict[str, object] = {}
        for layer in self.layers:
            merged.update(layer.overrides)
        return merged

    def experiment_config(self, seed: int | None = None) -> ExperimentConfig:
        """The scenario resolved to an :class:`ExperimentConfig`."""
        merged = self.resolved_overrides()
        if seed is not None:
            merged["seed"] = seed
        experiment = {k: v for k, v in merged.items() if k in _EXPERIMENT_FIELDS}
        internet_only = {k: v for k, v in merged.items() if k not in _EXPERIMENT_FIELDS}
        return ExperimentConfig(
            **experiment, internet_overrides=tuple(sorted(internet_only.items()))
        )

    def internet_config(self, seed: int | None = None) -> InternetConfig:
        """The scenario resolved to an :class:`InternetConfig`."""
        return self.experiment_config(seed=seed).internet_config()

    # -- substrate builders ------------------------------------------------------

    def build_internet(self, seed: int | None = None) -> "SimulatedInternet":
        """A simulated Internet for this scenario."""
        from repro.netmodel.internet import SimulatedInternet

        return SimulatedInternet(self.internet_config(seed=seed))

    def build_context(self, seed: int | None = None) -> "ExperimentContext":
        """A shared experiment context for this scenario."""
        from repro.experiments.context import ExperimentContext

        return ExperimentContext(self.experiment_config(seed=seed))

    def build_substrate(self, seed: int | None = None):
        """(internet, assembly) exactly as :class:`ExperimentContext` derives
        them -- the one place the substrate wiring (assembly seed scheme,
        run-up) is defined, so scenario consumers cannot drift from it."""
        context = self.build_context(seed=seed)
        return context.internet, context.assembly

    def summary(self) -> str:
        """One-line human-readable description of the resolved knobs."""
        overrides = self.resolved_overrides()
        knobs = ", ".join(f"{k}={v}" for k, v in sorted(overrides.items()))
        return f"{self.name}: {self.description}" + (f" [{knobs}]" if knobs else "")


def _scale_fields(config: ExperimentConfig) -> dict[str, object]:
    """The scale-relevant fields of a per-scale ExperimentConfig.

    Deliberately excludes ``seed``: a scale tier says how *big* the
    environment is, not which random universe it lives in, so composing a
    tier never silently re-seeds a scenario.  (This is the one documented
    asymmetry vs the legacy ``--scale test`` path, whose config pins seed 7.)
    """
    return {
        "num_ases": config.num_ases,
        "base_hosts_per_allocation": config.base_hosts_per_allocation,
        "max_hosts_per_allocation": config.max_hosts_per_allocation,
        "hitlist_target": config.hitlist_target,
        "runup_days": config.runup_days,
        "longitudinal_days": config.longitudinal_days,
    }


#: Scale tiers: how big the environment is, orthogonal to its structure.
SCALE_TIERS: dict[str, ScenarioLayer] = {
    "tiny": ScenarioLayer(
        "scale:tiny",
        {
            "num_ases": 40,
            "base_hosts_per_allocation": 5,
            "max_hosts_per_allocation": 100,
            "hitlist_target": 900,
            "runup_days": 25,
            "longitudinal_days": 4,
            "apd_min_targets": 60,
        },
    ),
    # Derived from the integration-test config so the two cannot drift.
    "test": ScenarioLayer("scale:test", _scale_fields(TEST_EXPERIMENT_CONFIG)),
    "default": ScenarioLayer("scale:default", {}),
    "mega": ScenarioLayer(
        "scale:mega",
        {
            "num_ases": 600,
            "base_hosts_per_allocation": 60,
            "max_hosts_per_allocation": 4_000,
            "hitlist_target": 60_000,
            "runup_days": 240,
        },
    ),
}

#: Anomaly mixes: the stochastic conditions probes face, orthogonal to both.
ANOMALY_MIXES: dict[str, ScenarioLayer] = {
    "deterministic": ScenarioLayer(
        "anomalies:deterministic",
        {
            "packet_loss": 0.0,
            "icmp_rate_limited_share": 0.0,
            "stochastic_anomalies": False,
            # Stochastic routed-path effects; the deterministic routed knobs
            # (filtering, churn, vantage) stay, as pure functions of
            # (target, protocol, day) they keep exact cross-engine parity.
            "transit_congestion": 0.0,
            "upstream_rate_limit": 0.0,
        },
    ),
    "realistic": ScenarioLayer("anomalies:realistic", {}),
    "hostile": ScenarioLayer(
        "anomalies:hostile",
        {
            "packet_loss": 0.08,
            "icmp_rate_limited_share": 0.25,
            "stochastic_anomalies": True,
        },
    ),
}


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (name must be unique)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def iter_scenarios() -> Iterator[Scenario]:
    """All registered scenarios, in name order."""
    for name in scenario_names():
        yield _REGISTRY[name]


def get_scenario(
    name: str, *, scale: str | None = None, anomalies: str | None = None
) -> Scenario:
    """Look up a preset by name, composing optional scale/anomaly tiers.

    Raises ``ValueError`` listing the registered names on an unknown name.
    """
    scenario = _REGISTRY.get(name)
    if scenario is None:
        raise ValueError(f"unknown scenario: {name!r} (expected one of {scenario_names()})")
    if scale is not None:
        scenario = scenario.at_scale(scale)
    if anomalies is not None:
        scenario = scenario.with_anomalies(anomalies)
    return scenario


def as_scenario(
    scenario: "str | Scenario",
    *,
    scale: str | None = None,
    anomalies: str | None = None,
) -> Scenario:
    """Coerce a scenario name or instance, composing optional tiers."""
    if isinstance(scenario, Scenario):
        if scale is not None:
            scenario = scenario.at_scale(scale)
        if anomalies is not None:
            scenario = scenario.with_anomalies(anomalies)
        return scenario
    return get_scenario(scenario, scale=scale, anomalies=anomalies)
