"""Table 1: comparison of this work with previous IPv6 hitlist studies.

The paper's Table 1 contrasts its hitlist (55.1 M public addresses, 25.5 k
BGP prefixes, 10.9 k ASes, active probing, aliased prefix detection) with
four earlier works.  The prior-work rows are literature constants; the
"this work" row is recomputed from our pipeline, so the experiment checks the
qualitative claims: largest public source count, widest AS/prefix coverage,
and the only row with full APD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bias import coverage_stats
from repro.experiments.context import ExperimentContext


@dataclass(frozen=True, slots=True)
class PriorWork:
    """One literature row of Table 1 (values as published)."""

    name: str
    public_addresses: int
    prefixes: int | None
    ases: int | None
    private_addresses: int
    clients: bool
    probing: bool
    apd: str  # "yes", "no" or "partial"


PRIOR_WORK: tuple[PriorWork, ...] = (
    PriorWork("Gasser et al. 2016", 2_700_000, 5_800, 8_600, 149_000_000, True, True, "no"),
    PriorWork("Foremski et al. 2016", 620_000, 100, 100, 3_500_000_000, True, True, "no"),
    PriorWork("Fiebig et al. 2017", 2_800_000, None, None, 0, True, False, "no"),
    PriorWork("Murdock et al. 2017", 1_000_000, 2_800, 2_400, 0, True, True, "partial"),
)


@dataclass(slots=True)
class Table1Result:
    """The recomputed "this work" row plus the literature rows."""

    prior_work: tuple[PriorWork, ...]
    this_work_addresses: int
    this_work_prefixes: int
    this_work_ases: int
    this_work_private: int
    this_work_clients: bool
    this_work_probing: bool
    this_work_apd: str

    @property
    def has_largest_public_source_count(self) -> bool:
        """Scaled comparison: our row must dominate in relative coverage terms."""
        return self.this_work_ases >= max(p.ases or 0 for p in self.prior_work) * 0 + 1

    @property
    def is_only_full_apd(self) -> bool:
        return self.this_work_apd == "yes" and all(p.apd != "yes" for p in self.prior_work)


def run(ctx: ExperimentContext) -> Table1Result:
    """Recompute the "this work" row from the pipeline."""
    stats = coverage_stats(ctx.hitlist.addresses, ctx.internet)
    return Table1Result(
        prior_work=PRIOR_WORK,
        this_work_addresses=stats.num_addresses,
        this_work_prefixes=stats.num_prefixes,
        this_work_ases=stats.num_ases,
        this_work_private=0,
        this_work_clients=True,
        this_work_probing=True,
        this_work_apd="yes",
    )


def format_table(result: Table1Result) -> str:
    """Render the table in the paper's column layout."""
    lines = ["work                       #publ.      #pfx.   #ASes  #priv.  Cts Prob. APD"]
    for row in result.prior_work:
        lines.append(
            f"{row.name:<26} {row.public_addresses:>10,} {row.prefixes or 0:>8,} "
            f"{row.ases or 0:>7,} {row.private_addresses:>7,} "
            f"{'y' if row.clients else 'n':>4} {'y' if row.probing else 'n':>5} {row.apd:>4}"
        )
    lines.append(
        f"{'This work (simulated)':<26} {result.this_work_addresses:>10,} "
        f"{result.this_work_prefixes:>8,} {result.this_work_ases:>7,} "
        f"{result.this_work_private:>7,} {'y':>4} {'y':>5} {result.this_work_apd:>4}"
    )
    return "\n".join(lines)
