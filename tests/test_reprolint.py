"""Tests for reprolint (repro.analysis_static): rules R1-R5, pragmas, CLI.

Each rule gets a good/bad fixture pair written to ``tmp_path``: the bad
fixture must be caught (correct rule id, correct line neighbourhood) and
the good fixture must lint clean -- so a rule that silently stops firing
fails the suite, not just the invariant it guards.  The repo-wide smoke
test at the bottom pins the tree itself at zero findings: reverting one of
the fixes this linter forced (e.g. the ``BatchProbeResult.column``
readonly wrap) makes this suite fail, not just CI lint.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis_static import lint_paths
from repro.analysis_static.__main__ import main as reprolint_main
from repro.analysis_static.engine import RULE_REGISTRY, LintUsageError

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_fixture(tmp_path, sources: dict[str, str], select=None):
    """Write *sources* under tmp_path and lint them; returns the findings."""
    for name, text in sources.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    findings, files_checked = lint_paths([tmp_path], select=select)
    assert files_checked == len(sources)
    return findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


# -- registry ----------------------------------------------------------------


def test_all_five_rules_registered():
    assert sorted(RULE_REGISTRY) == ["R1", "R2", "R3", "R4", "R5"]


# -- R1 determinism ----------------------------------------------------------

R1_BAD = """
    import random
    import numpy as np
    import time
    from datetime import datetime

    def draw():
        rng = random.Random()          # unseeded
        x = random.random()            # module-level global state
        y = np.random.rand(4)          # legacy global-state API
        started = time.time()          # wall clock
        stamp = datetime.now()         # wall clock
        return rng, x, y, started, stamp
"""

R1_GOOD = """
    import random
    import numpy as np

    def draw(seed: int):
        rng = random.Random(seed)
        gen = np.random.default_rng(seed)
        return rng.random(), gen.random(4)
"""


def test_r1_catches_unseeded_and_wallclock(tmp_path):
    findings = lint_fixture(tmp_path, {"pkg/bad.py": R1_BAD})
    assert rules_of(findings) == ["R1"]
    messages = " | ".join(f.message for f in findings)
    assert "unseeded random.Random()" in messages
    assert "random.random()" in messages
    assert "np.random.rand()" in messages
    assert "time.time" in messages
    assert "datetime.now" in messages
    assert len(findings) == 5


def test_r1_good_fixture_is_clean(tmp_path):
    assert lint_fixture(tmp_path, {"pkg/good.py": R1_GOOD}) == []


def test_r1_wallclock_allowed_in_scripts_paths(tmp_path):
    source = """
        import time

        def main():
            started = time.time()
            return started
    """
    # Same code: flagged under pkg/, allowed under scripts/ (CLI timing).
    assert rules_of(lint_fixture(tmp_path / "a", {"pkg/cli.py": source})) == ["R1"]
    assert lint_fixture(tmp_path / "b", {"scripts/cli.py": source}) == []


def test_r1_seeded_rng_still_required_in_scripts(tmp_path):
    source = """
        import random

        def main():
            return random.Random()
    """
    findings = lint_fixture(tmp_path, {"scripts/cli.py": source})
    assert rules_of(findings) == ["R1"]


# -- R2 snapshot immutability ------------------------------------------------

R2_BAD_FROZEN = """
    class Columns:
        __frozen_arrays__ = ("hi", "lo")

        def __init__(self, hi, lo):
            self.hi = hi        # construction stores are fine
            self.lo = lo

        def clobber(self, hi):
            self.hi = hi        # rebind of a frozen slot

        def poke(self):
            self.hi[0] = 1      # in-place element store

        def mangle(self):
            self.lo.sort()      # mutating ndarray call
"""

R2_GOOD_FROZEN = """
    class Columns:
        __frozen_arrays__ = ("hi", "lo")

        def __init__(self, hi, lo):
            self.hi = hi
            self.lo = lo
            self.count = len(hi)

        def widened(self, hi, lo):
            return Columns(hi, lo)   # copy-on-write: new object, no mutation

        def retag(self, count):
            self.count = count       # not a declared frozen slot
"""


def test_r2_catches_frozen_class_mutation(tmp_path):
    findings = lint_fixture(tmp_path, {"pkg/bad.py": R2_BAD_FROZEN})
    assert rules_of(findings) == ["R2"]
    messages = " | ".join(f.message for f in findings)
    assert "store to frozen attribute self.hi" in messages
    assert "in-place element store to frozen attribute self.hi" in messages
    assert "mutating call self.lo.sort()" in messages
    assert len(findings) == 3


def test_r2_good_fixture_is_clean(tmp_path):
    assert lint_fixture(tmp_path, {"pkg/good.py": R2_GOOD_FROZEN}) == []


def test_r2_name_registered_class_freezes_every_attr(tmp_path):
    source = """
        class HitlistSnapshot:
            def __init__(self, rows):
                self.rows = rows

            def trim(self, rows):
                self.rows = rows
    """
    findings = lint_fixture(tmp_path, {"pkg/snap.py": source})
    assert rules_of(findings) == ["R2"]
    assert len(findings) == 1


def test_r2_cross_file_store_through_frozen_attr(tmp_path):
    consumer = """
        def corrupt(columns):
            columns.hi[0] = 7
    """
    findings = lint_fixture(
        tmp_path, {"pkg/cols.py": R2_GOOD_FROZEN, "pkg/consumer.py": consumer}
    )
    assert rules_of(findings) == ["R2"]
    assert "declared-frozen attribute .hi" in findings[0].message


def test_r2_publish_boundary_bare_slice_vs_readonly(tmp_path):
    bad = """
        class BatchProbeResult:
            def column(self, i):
                return self.responsive[:, i]
    """
    good = """
        from repro.addr.batch import readonly_view

        class BatchProbeResult:
            def column(self, i):
                return readonly_view(self.responsive[:, i])
    """
    findings = lint_fixture(tmp_path / "a", {"pkg/bad.py": bad})
    assert rules_of(findings) == ["R2"]
    assert "bare slice" in findings[0].message
    assert lint_fixture(tmp_path / "b", {"pkg/good.py": good}) == []


def test_r2_publish_boundary_bare_asarray(tmp_path):
    source = """
        import numpy as np

        class BatchProbeResult:
            def column(self, i):
                return np.asarray(self.rows[i])
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert rules_of(findings) == ["R2"]
    assert "np.asarray" in findings[0].message


# -- R3 lock discipline ------------------------------------------------------

R3_BAD = """
    import threading

    class Server:
        _GUARDED_BY = {"_snapshots": "_publish_lock"}

        def __init__(self):
            self._publish_lock = threading.Lock()
            self._snapshots = {}     # __init__ is exempt

        def generations(self):
            return sorted(self._snapshots)   # unguarded read

        def forget(self):
            self._snapshots = {}             # unguarded write
"""

R3_GOOD = """
    import threading

    class Server:
        _GUARDED_BY = {"_snapshots": "_publish_lock"}

        def __init__(self):
            self._publish_lock = threading.Lock()
            self._snapshots = {}

        def generations(self):
            with self._publish_lock:
                return sorted(self._snapshots)

        def publish(self, generation, snapshot):
            with self._publish_lock:
                self._snapshots[generation] = snapshot
"""


def test_r3_catches_unguarded_access(tmp_path):
    findings = lint_fixture(tmp_path, {"pkg/bad.py": R3_BAD})
    assert rules_of(findings) == ["R3"]
    messages = [f.message for f in findings]
    assert any(m.startswith("read of guarded attribute self._snapshots") for m in messages)
    assert any(m.startswith("write of guarded attribute self._snapshots") for m in messages)
    assert len(findings) == 2


def test_r3_good_fixture_is_clean(tmp_path):
    assert lint_fixture(tmp_path, {"pkg/good.py": R3_GOOD}) == []


def test_r3_wrong_lock_does_not_count(tmp_path):
    source = """
        import threading

        class Server:
            _GUARDED_BY = {"_snapshots": "_publish_lock"}

            def __init__(self):
                self._publish_lock = threading.Lock()
                self._stats_lock = threading.Lock()
                self._snapshots = {}

            def generations(self):
                with self._stats_lock:
                    return sorted(self._snapshots)
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert rules_of(findings) == ["R3"]


# -- R4 engine parity --------------------------------------------------------


def test_r4_one_family_dispatch_is_flagged(tmp_path):
    source = """
        def run(engine="batch"):
            if engine == "batch":
                return 1
            return 2
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert rules_of(findings) == ["R4"]
    assert "reference/scalar" in findings[0].message


def test_r4_both_families_dispatch_is_clean(tmp_path):
    source = """
        def run(engine="batch"):
            if engine in ("batch", "vectorized"):
                return 1
            if engine in ("reference", "scalar"):
                return 2
            raise ValueError(
                "unknown engine; accepted: batch, vectorized, reference, scalar"
            )
    """
    assert lint_fixture(tmp_path, {"pkg/good.py": source}) == []


def test_r4_canonical_engine_normalisation_is_clean(tmp_path):
    source = """
        from repro.core.engines import canonical_engine

        def run(engine="batch"):
            family = canonical_engine(engine, "fast", "ref")
            return family
    """
    assert lint_fixture(tmp_path, {"pkg/good.py": source}) == []


def test_r4_delegation_is_clean(tmp_path):
    source = """
        def outer(data, engine="batch"):
            return inner(data, engine=engine)

        def inner(data, engine="batch"):
            if engine in ("batch", "vectorized"):
                return 1
            if engine in ("reference", "scalar"):
                return 2
    """
    assert lint_fixture(tmp_path, {"pkg/good.py": source}) == []


def test_r4_unused_engine_parameter_is_flagged(tmp_path):
    source = """
        def run(data, engine="batch"):
            return data
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert rules_of(findings) == ["R4"]
    assert "never uses it" in findings[0].message


def test_r4_raw_store_without_normalisation_is_flagged(tmp_path):
    source = """
        class Service:
            def __init__(self, engine="batch"):
                self.engine = engine
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert rules_of(findings) == ["R4"]
    assert "canonical_engine" in findings[0].message


def test_r4_error_message_must_list_every_synonym(tmp_path):
    source = """
        def run(engine="batch"):
            if engine in ("batch", "vectorized"):
                return 1
            if engine == "reference":
                return 2
            raise ValueError(f"unknown engine {engine}; use batch or reference")
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert "R4" in rules_of(findings)
    assert any("scalar" in f.message for f in findings)


# -- R5 policy resolution ----------------------------------------------------


def test_r5_raw_policy_engine_compare_is_flagged(tmp_path):
    source = """
        def run(data, policy):
            if policy.engine == "batch":
                return 1
            return 2
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert rules_of(findings) == ["R5"]
    assert "resolve_policy" in findings[0].message


def test_r5_annotated_policy_parameter_is_flagged(tmp_path):
    source = """
        def run(data, engine: "ExecutionPolicy | str | None" = None):
            inner(data, engine=engine)  # delegation keeps R4 quiet
            if engine.engine in ("batch", "vectorized"):
                return 1
            return 2
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert "R5" in rules_of(findings)


def test_r5_resolve_policy_routing_is_clean(tmp_path):
    source = """
        from repro.exec import resolve_policy

        def run(data, policy=None):
            policy = resolve_policy(engine=policy)
            if policy.engine == "vectorized":
                return 1
            return 2
    """
    assert lint_fixture(tmp_path, {"pkg/good.py": source}, select=["R5"]) == []


def test_r5_nonliteral_compare_is_clean(tmp_path):
    source = """
        def run(data, policy, canonical):
            if policy.engine == canonical:
                return 1
            return 2
    """
    assert lint_fixture(tmp_path, {"pkg/good.py": source}, select=["R5"]) == []


def test_r5_self_engine_compare_is_clean(tmp_path):
    source = """
        class Runner:
            def step(self):
                if self.engine == "batch":
                    return 1
                return 2
    """
    assert lint_fixture(tmp_path, {"pkg/good.py": source}, select=["R5"]) == []


# -- pragmas -----------------------------------------------------------------


def test_line_pragma_suppresses_single_rule(tmp_path):
    source = """
        import random

        def draw():
            return random.Random()  # reprolint: disable=R1
    """
    assert lint_fixture(tmp_path, {"pkg/ok.py": source}) == []


def test_line_pragma_does_not_leak_to_other_lines(tmp_path):
    source = """
        import random

        def draw():
            a = random.Random()  # reprolint: disable=R1
            b = random.Random()
            return a, b
    """
    findings = lint_fixture(tmp_path, {"pkg/part.py": source})
    assert len(findings) == 1


def test_file_pragma_suppresses_whole_file(tmp_path):
    source = """
        # reprolint: disable-file=R1
        import random

        def draw():
            return random.Random(), random.random()
    """
    assert lint_fixture(tmp_path, {"pkg/ok.py": source}) == []


def test_disable_all_pragma(tmp_path):
    source = """
        import random

        def draw():
            return random.Random()  # reprolint: disable=all
    """
    assert lint_fixture(tmp_path, {"pkg/ok.py": source}) == []


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    source = """
        import random

        def draw():
            return random.Random()  # reprolint: disable=R2
    """
    findings = lint_fixture(tmp_path, {"pkg/bad.py": source})
    assert rules_of(findings) == ["R1"]


# -- selection and errors ----------------------------------------------------


def test_select_limits_rules(tmp_path):
    findings = lint_fixture(tmp_path, {"pkg/bad.py": R1_BAD}, select=["R2"])
    assert findings == []


def test_unknown_rule_raises_usage_error(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n")
    with pytest.raises(LintUsageError):
        lint_paths([tmp_path], select=["R9"])


def test_missing_path_raises_usage_error():
    with pytest.raises(LintUsageError):
        lint_paths(["does/not/exist"])


# -- CLI contract ------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.Random()\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert reprolint_main([str(clean)]) == 0
    assert reprolint_main([str(bad)]) == 1
    assert reprolint_main(["--select", "R9", str(clean)]) == 2
    capsys.readouterr()


def test_cli_json_output_schema(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.Random()\n")
    assert reprolint_main(["--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "R1"
    assert finding["line"] == 2


def test_cli_human_output_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.Random()\n")
    assert reprolint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"{bad.as_posix()}:2:" in out
    assert "R1:" in out
    assert "1 finding in 1 files" in out


def test_cli_list_rules(capsys):
    assert reprolint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R1", "R2", "R3", "R4", "R5"):
        assert rule_id in out


# -- repo-wide smoke ---------------------------------------------------------


def test_repository_lints_clean():
    """The tree itself must satisfy its own invariants (acceptance gate)."""
    findings, files_checked = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "scripts", REPO_ROOT / "examples"]
    )
    assert findings == [], "\n".join(f.format_human() for f in findings)
    assert files_checked > 90  # the whole tree, not a subset


def test_repository_declares_the_core_invariants():
    """The declarations the rules key on must stay present in the tree."""
    from repro.analysis_static.engine import LintContext, SourceFile

    sources = []
    for rel in (
        "src/repro/serving/server.py",
        "src/repro/serving/snapshot.py",
        "src/repro/addr/batch.py",
    ):
        path = REPO_ROOT / rel
        sources.append(SourceFile.load(path, path.as_posix()))
    context = LintContext.collect(sources)
    assert context.guarded_by["HitlistServer"]["_snapshots"] == "_publish_lock"
    assert context.guarded_by["HitlistServer"]["_query_counts"] == "_stats_lock"
    assert context.frozen_arrays["AddressBatch"] == ("hi", "lo")
    assert "_starts_hi" in context.frozen_arrays["FlatLPM"]
    assert "_responsive" in context.frozen_arrays["HitlistSnapshot"]


def test_r1_covers_the_events_layer():
    """The sub-day dynamics modules sit under the determinism rule: they lint
    clean today, and an unseeded rng or wall-clock read there must fire R1."""
    events = REPO_ROOT / "src" / "repro" / "events"
    findings, files_checked = lint_paths([events], select=["R1"])
    assert files_checked >= 4  # scheduler, tokenbucket, dynamics, contention
    assert findings == [], "\n".join(f.format_human() for f in findings)
