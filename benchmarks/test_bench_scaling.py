"""Performance benchmarks of the core algorithmic kernels.

Unlike the per-table/figure harnesses these measure raw throughput of the
pieces a downstream user would run at much larger scale: longest-prefix
matching (trie and flattened batch LPM), entropy fingerprinting, k-means and
the probe path in both its scalar and vectorised (``probe_batch``) forms.
"""

import multiprocessing
import random
import time

import numpy as np

from benchmarks.conftest import run_once, write_bench_json
from repro.addr import PrefixTrie
from repro.addr.batch import AddressBatch, FlatLPM, random_batch_in_prefix
from repro.addr.generate import random_address_in_prefix
from repro.core.clustering import kmeans
from repro.core.entropy import nybble_entropies
from repro.exec import chunked_probe_batch, scratch_memmap
from repro.netmodel.services import Protocol
from repro.scenarios import build


def test_bench_trie_longest_prefix_match(benchmark, ctx):
    trie = PrefixTrie()
    for i, announcement in enumerate(ctx.internet.bgp):
        trie.insert(announcement.prefix, i)
    addresses = ctx.hitlist.addresses[:5000]

    def lookups():
        return sum(1 for a in addresses if trie.lookup(a) is not None)

    hits = benchmark(lookups)
    assert hits > len(addresses) * 0.9


def test_bench_entropy_fingerprint(benchmark, ctx):
    addresses = ctx.hitlist.addresses[:2000]

    def fingerprint():
        return nybble_entropies(addresses, 9, 32)

    entropies = benchmark(fingerprint)
    assert len(entropies) == 24


def test_bench_kmeans(benchmark):
    rng = np.random.default_rng(0)
    data = np.vstack([rng.normal(i % 4, 0.1, size=(100, 24)) for i in range(8)])

    def cluster():
        return kmeans(data, 6, seed=1, restarts=3)

    result = benchmark(cluster)
    assert result.k == 6


def test_bench_probe_throughput(benchmark, ctx):
    internet = ctx.internet
    rng = random.Random(5)
    region = internet.aliased_regions[0]
    targets = [random_address_in_prefix(region.prefix, rng) for _ in range(500)]

    def probe_scalar():
        return sum(
            1 for t in targets if internet.probe(t, Protocol.ICMP, day=0) is not None
        )

    responded = benchmark(probe_scalar)
    assert responded > 400


def test_bench_flat_lpm_batch_lookup(benchmark, ctx):
    """Flattened LPM over the BGP table: one vectorised search for the whole
    hitlist instead of per-address trie walks."""
    flat = FlatLPM((ann.prefix, i) for i, ann in enumerate(ctx.internet.bgp))
    batch = ctx.hitlist.address_batch

    def lookups():
        return int((flat.lookup_indices(batch) >= 0).sum())

    hits = benchmark(lookups)
    assert hits > len(batch) * 0.9


def test_bench_probe_batch_throughput(benchmark, ctx):
    """Raw probe_batch throughput: 100 k targets x 2 protocols per call."""
    internet = ctx.internet
    region = internet.aliased_regions[0]
    batch = random_batch_in_prefix(region.prefix, 100_000, np.random.default_rng(5))

    def probe():
        result = internet.probe_batch(
            batch, (Protocol.ICMP, Protocol.TCP80), day=0, rng=6
        )
        return result.count(Protocol.ICMP)

    responded = benchmark(probe)
    assert responded > 90_000


def test_bench_probe_batch_vs_scalar(benchmark, ctx):
    """probe_batch must beat an equivalent scalar probe loop by >= 5x."""

    def compare():
        internet = ctx.internet
        addresses = ctx.hitlist.addresses[:20_000]
        # The hot paths keep targets columnar; conversion cost is not part of
        # the probe loop being compared.
        full = ctx.hitlist.address_batch
        batch = AddressBatch(full.hi[: len(addresses)], full.lo[: len(addresses)])
        # Warm the per-day stability memo (a one-time cost the daily
        # multi-protocol pipeline amortises over every subsequent sweep).
        internet.probe_batch(batch, (Protocol.ICMP,), day=0, rng=7)
        start = time.perf_counter()
        scalar_hits = sum(
            1 for a in addresses if internet.probe(a, Protocol.ICMP, day=0) is not None
        )
        scalar_elapsed = time.perf_counter() - start
        # Best of a few repeats: the ms-scale batch pass must not lose the
        # ratio assertion to a scheduler hiccup on a shared CI runner.
        batch_elapsed = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            result = internet.probe_batch(batch, (Protocol.ICMP,), day=0, rng=7)
            batch_elapsed = min(batch_elapsed, time.perf_counter() - start)
        return len(addresses), scalar_hits, result.count(Protocol.ICMP), scalar_elapsed, batch_elapsed

    n, scalar_hits, batch_hits, scalar_elapsed, batch_elapsed = run_once(benchmark, compare)
    speedup = scalar_elapsed / batch_elapsed if batch_elapsed else float("inf")
    print(
        f"\n{n} ICMP probes: scalar {scalar_elapsed * 1e3:.1f} ms, "
        f"batch {batch_elapsed * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 5.0
    # Same Internet, same targets: response counts agree up to loss noise.
    assert abs(scalar_hits - batch_hits) <= max(50, int(n * 0.02))


# -- out-of-core / multi-core scaling curve ----------------------------------

#: Probe-sweep tiers: 1x / 10x / 100x fan-out rows.
SCALING_TIERS = {"1x": 1_024, "10x": 10_240, "100x": 102_400}
SCALING_CHUNK_ROWS = 2_048


def _scaling_run(internet, targets, protocols, *, storage, workers):
    """One timed streamed probe sweep; returns (elapsed, responses)."""
    n = len(targets)
    out = (
        scratch_memmap((n, len(protocols)), np.bool_)
        if storage == "memmap"
        else np.zeros((n, len(protocols)), dtype=bool)
    )
    start = time.perf_counter()
    chunked_probe_batch(
        internet,
        targets,
        protocols,
        0,
        chunk_rows=SCALING_CHUNK_ROWS,
        workers=workers,
        out=out,
    )
    elapsed = time.perf_counter() - start
    return elapsed, int(np.asarray(out).sum())


def test_bench_scaling_curve(benchmark, tmp_path):
    """Throughput of the streamed probe sweep across tiers, storage, workers.

    Measures the execution tier's scaling curve -- 1x/10x/100x fan-out rows,
    RAM vs memmap scratch, single vs multi worker -- and appends the results
    to ``BENCH_scaling.json``.  The gated metric is the 10x single-core RAM
    throughput (``targets_per_sec``); the multi-core speedup is recorded but
    only asserted on machines that actually have more than one core.
    """
    internet = build("internet", "megascale", scale="tiny", anomalies="deterministic")
    protocols = (Protocol.ICMP, Protocol.TCP80)
    region = internet.aliased_regions[0]
    rng = np.random.default_rng(9)
    cpu_count = multiprocessing.cpu_count()
    workers = min(4, max(2, cpu_count))

    def sweep():
        curve = {}
        responses = {}
        for tier, n in SCALING_TIERS.items():
            batch = random_batch_in_prefix(region.prefix, n, rng)
            # The 100x tier runs out-of-core end to end: targets parked in a
            # memmap file and reopened zero-copy, never fully heap-resident.
            if tier == "100x":
                batch = AddressBatch.from_memmap(
                    batch.to_memmap(tmp_path / f"targets-{tier}.npy")
                )
            curve[tier] = {}
            for storage in ("ram", "memmap"):
                for nworkers in (1, workers):
                    elapsed, responded = _scaling_run(
                        internet, batch, protocols, storage=storage, workers=nworkers
                    )
                    key = f"{storage}-w{nworkers}"
                    curve[tier][key] = {
                        "elapsed_sec": round(elapsed, 6),
                        "targets_per_sec": round(n / elapsed) if elapsed else None,
                    }
                    responses.setdefault(tier, set()).add(responded)
        return curve, responses

    curve, responses = run_once(benchmark, sweep)
    # Every configuration of a tier probes the identical target rows on a
    # deterministic internet: response counts must agree exactly.
    for tier, counts in responses.items():
        assert len(counts) == 1, (tier, counts)

    base = curve["10x"]["ram-w1"]["targets_per_sec"]
    multi = curve["10x"][f"ram-w{workers}"]["targets_per_sec"]
    multicore_speedup = multi / base if base else 0.0
    payload = {
        "targets_per_sec": base,
        "multicore_speedup_10x": round(multicore_speedup, 3),
        "workers": workers,
        "cpu_count": cpu_count,
        "chunk_rows": SCALING_CHUNK_ROWS,
        "curve": curve,
    }
    write_bench_json("scaling", payload)
    print(f"\nscaling curve ({cpu_count} cores, {workers} workers): {curve}")
    if cpu_count >= 2:
        assert multicore_speedup >= 2.0, curve["10x"]
