"""Assembling all daily-scanned sources into one hitlist input.

Mirrors Table 2 of the paper: each source contributes addresses, overlapping
addresses are attributed to the source that saw them first (the "new IPs"
column), and per-source AS/prefix coverage statistics are computed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.addr.address import IPv6Address
from repro.addr.batch import AddressBatch
from repro.netmodel.internet import SimulatedInternet
from repro.sources.axfr import AXFRSource
from repro.sources.base import HitlistSource
from repro.sources.bitnodes import BitnodesSource
from repro.sources.ctlogs import CTLogsSource
from repro.sources.domainlists import DomainListsSource
from repro.sources.fdns import FDNSSource
from repro.sources.ripeatlas import RIPEAtlasSource
from repro.sources.scamper_source import ScamperSource

#: Relative size of each daily source, matching the paper's Table 2 "new IPs"
#: proportions (domain lists 9.8 M, FDNS 2.5 M, CT 16.2 M, AXFR 0.5 M,
#: Bitnodes 27 k, RIPE Atlas 0.2 M, scamper 25.9 M of a 55.1 M total).
SOURCE_SHARES: dict[str, float] = {
    "domainlists": 0.178,
    "fdns": 0.045,
    "ct": 0.294,
    "axfr": 0.009,
    "bitnodes": 0.002,
    "ripeatlas": 0.004,
    "scamper": 0.468,
}


@dataclass(slots=True)
class SourceStats:
    """Per-source statistics for the Table 2 reproduction."""

    name: str
    nature: str
    public: bool
    total_ips: int
    new_ips: int
    num_ases: int
    num_prefixes: int
    top_as_shares: list[tuple[str, float]] = field(default_factory=list)


@dataclass(slots=True)
class SourceAssembly:
    """All sources plus the merged hitlist input."""

    internet: SimulatedInternet
    sources: list[HitlistSource]

    def snapshot(self, day: int | None = None) -> list[IPv6Address]:
        """Union of all sources' addresses up to *day*, first-seen order."""
        seen: set[int] = set()
        merged: list[IPv6Address] = []
        for source in self.sources:
            for addr in source.snapshot(day):
                if addr.value not in seen:
                    seen.add(addr.value)
                    merged.append(addr)
        return merged

    def records_by_source(self, day: int | None = None) -> Mapping[str, list[IPv6Address]]:
        """Per-source snapshot addresses."""
        return {s.name: list(s.snapshot(day)) for s in self.sources}

    def _bgp_coverage(self, addresses: Sequence[IPv6Address]) -> tuple[dict[int, int], set]:
        """Addresses per origin AS and the set of covering announced prefixes.

        One flattened-LPM batch lookup (shared with ``probe_batch``) for the
        whole address list instead of a per-address trie walk.
        """
        asns: dict[int, int] = {}
        prefixes: set = set()
        if not addresses:
            return asns, prefixes
        flat = self.internet.bgp_lpm()
        indices = flat.lookup_indices(AddressBatch.from_addresses(addresses))
        covered = indices[indices >= 0]
        unique, counts = np.unique(covered, return_counts=True)
        for index, count in zip(unique.tolist(), counts.tolist()):
            announcement = flat.objects[index]
            asns[announcement.origin_asn] = asns.get(announcement.origin_asn, 0) + count
            prefixes.add(announcement.prefix)
        return asns, prefixes

    def source_stats(self, day: int | None = None, top_n: int = 3) -> list[SourceStats]:
        """Compute the Table 2 rows: total/new IPs, AS and prefix coverage."""
        stats: list[SourceStats] = []
        seen: set[int] = set()
        for source in self.sources:
            snapshot = source.snapshot(day)
            addresses = list(snapshot)
            new = [a for a in addresses if a.value not in seen]
            seen.update(a.value for a in addresses)
            asns, prefixes = self._bgp_coverage(addresses)
            top = sorted(asns.items(), key=lambda kv: kv[1], reverse=True)[:top_n]
            total_with_asn = sum(asns.values()) or 1
            top_shares = [
                (self.internet.registry.name_of(asn), count / total_with_asn)
                for asn, count in top
            ]
            stats.append(
                SourceStats(
                    name=source.name,
                    nature=source.nature,
                    public=source.public,
                    total_ips=len(addresses),
                    new_ips=len(new),
                    num_ases=len(asns),
                    num_prefixes=len(prefixes),
                    top_as_shares=top_shares,
                )
            )
        return stats

    def cumulative_runup(self, days: Sequence[int]) -> Mapping[str, list[int]]:
        """Per-source cumulative address counts over time (Figure 1a)."""
        return {s.name: s.cumulative_counts(days) for s in self.sources}

    def total_stats(self, day: int | None = None) -> SourceStats:
        """The Table 2 "Total" row."""
        merged = self.snapshot(day)
        asns, prefixes = self._bgp_coverage(merged)
        top = sorted(asns.items(), key=lambda kv: kv[1], reverse=True)[:3]
        total_with_asn = sum(asns.values()) or 1
        return SourceStats(
            name="total",
            nature="Mixed",
            public=True,
            total_ips=len(merged),
            new_ips=len(merged),
            num_ases=len(asns),
            num_prefixes=len(prefixes),
            top_as_shares=[
                (self.internet.registry.name_of(asn), count / total_with_asn)
                for asn, count in top
            ],
        )


def assemble_all_sources(
    internet: SimulatedInternet,
    total_target: int = 40_000,
    seed: int = 99,
    runup_days: int = 180,
) -> SourceAssembly:
    """Build every daily-scanned source at the configured relative sizes.

    ``total_target`` is the approximate size of the merged hitlist input;
    each source receives its Table 2 share of it.  The scamper source
    traceroutes a sample of the other sources' targets, as in the paper.
    """
    rng = random.Random(seed)
    sizes = {name: max(10, int(total_target * share)) for name, share in SOURCE_SHARES.items()}
    domainlists = DomainListsSource(internet, sizes["domainlists"], rng.getrandbits(32), runup_days)
    fdns = FDNSSource(internet, sizes["fdns"], rng.getrandbits(32), runup_days)
    ct = CTLogsSource(internet, sizes["ct"], rng.getrandbits(32), runup_days)
    axfr = AXFRSource(internet, sizes["axfr"], rng.getrandbits(32), runup_days)
    bitnodes = BitnodesSource(internet, sizes["bitnodes"], rng.getrandbits(32), runup_days)
    ripeatlas = RIPEAtlasSource(internet, sizes["ripeatlas"], rng.getrandbits(32), runup_days)
    dns_targets = domainlists.snapshot().addresses + ct.snapshot().addresses
    sample_size = min(len(dns_targets), max(50, sizes["scamper"] // 10))
    scamper = ScamperSource(
        internet,
        sizes["scamper"],
        rng.getrandbits(32),
        runup_days,
        traceroute_targets=rng.sample(dns_targets, sample_size) if dns_targets else [],
    )
    return SourceAssembly(
        internet=internet,
        sources=[domainlists, fdns, ct, axfr, bitnodes, ripeatlas, scamper],
    )
