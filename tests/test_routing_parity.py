"""Degenerate-topology regression suite.

The routed AS graph must be a strict superset of the historical flat probe
resolution: with ``num_transit_ases = 0`` (the degenerate single-homed star)
probe resolution takes the exact pre-routing code path, and with a routed
graph whose effect knobs are all zero the outcomes are still bit-identical
-- same responses, same random draws.  This suite pins both properties on
every registered scenario preset (reusing the cross-engine differential
oracle) and at the raw ``probe``/``probe_batch`` level, so the golden
tables and figures survive the routed-topology migration unchanged.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.addr.batch import AddressBatch
from repro.netmodel.config import InternetConfig
from repro.netmodel.internet import SimulatedInternet
from repro.netmodel.services import ALL_PROTOCOLS
from repro.scenarios import get_scenario, run_differential, scenario_names

#: Deterministic tiny substrate shared by the bit-identity checks.
_FLAT = InternetConfig(
    num_ases=48,
    base_hosts_per_allocation=8,
    max_hosts_per_allocation=160,
    packet_loss=0.0,
    icmp_rate_limited_share=0.0,
    stochastic_anomalies=False,
)

#: The same Internet with a routed graph whose path effects are all zero.
_ROUTED_NO_EFFECTS = replace(_FLAT, num_transit_ases=4, num_ixps=1, num_vantages=2)


@pytest.fixture(scope="module")
def flat_internet():
    return SimulatedInternet(_FLAT)


@pytest.fixture(scope="module")
def routed_internet():
    return SimulatedInternet(_ROUTED_NO_EFFECTS)


@pytest.fixture(scope="module")
def shared_targets(flat_internet):
    addresses = flat_internet.all_bound_addresses()
    return AddressBatch.from_addresses(addresses[::3])


class TestBitIdentity:
    def test_structure_is_unchanged_by_the_routed_graph(
        self, flat_internet, routed_internet
    ):
        """Same seed => same hosts, addressing and announcements, graph or not."""
        assert flat_internet.routing.active is False
        assert routed_internet.routing.active is True
        assert [h.addresses for h in flat_internet.hosts] == [
            h.addresses for h in routed_internet.hosts
        ]
        assert [a.prefix for a in flat_internet.bgp] == [
            a.prefix for a in routed_internet.bgp
        ]
        assert flat_internet.aliased_prefixes() == routed_internet.aliased_prefixes()

    @pytest.mark.parametrize("day", [0, 1, 5])
    def test_probe_batch_is_bit_identical(
        self, flat_internet, routed_internet, shared_targets, day
    ):
        """Zero-effect routed resolution consumes no draws and flips nothing."""
        flat = flat_internet.probe_batch(shared_targets, day=day, rng=day + 1)
        routed = routed_internet.probe_batch(shared_targets, day=day, rng=day + 1)
        assert np.array_equal(flat.responsive, routed.responsive)

    def test_scalar_probe_is_bit_identical(
        self, flat_internet, routed_internet, shared_targets
    ):
        import random

        addresses = shared_targets.to_addresses()[:300]
        for protocol in ALL_PROTOCOLS:
            flat_rng, routed_rng = random.Random(7), random.Random(7)
            flat = [
                flat_internet.probe(a, protocol, day=1, rng=flat_rng) is not None
                for a in addresses
            ]
            routed = [
                routed_internet.probe(a, protocol, day=1, rng=routed_rng) is not None
                for a in addresses
            ]
            assert flat == routed
            # No extra draws either: the streams must end in the same state.
            assert flat_rng.random() == routed_rng.random()

    def test_traceroute_is_bit_identical_in_degenerate_mode(self, flat_internet):
        """The flat path keeps its draw order (scamper goldens depend on it)."""
        import random

        address = flat_internet.all_bound_addresses()[0]
        a = flat_internet.traceroute(address, rng=random.Random(3))
        b = flat_internet.traceroute(address, rng=random.Random(3))
        assert a == b and a

    @pytest.mark.parametrize("vantage", [0, 1, 5])
    def test_vantage_is_irrelevant_without_path_effects(
        self, routed_internet, shared_targets, vantage
    ):
        base = routed_internet.probe_batch(shared_targets, day=0, rng=11)
        other = routed_internet.probe_batch(
            shared_targets, day=0, rng=11, vantage=vantage
        )
        assert np.array_equal(base.responsive, other.responsive)


class TestScalarBatchRoutedParity:
    """Scalar probe and probe_batch agree under deterministic routed effects."""

    @pytest.fixture(scope="class")
    def filtered_internet(self):
        return SimulatedInternet(
            replace(_ROUTED_NO_EFFECTS, filtered_region=2, bgp_churn_rate=0.4)
        )

    @pytest.mark.parametrize("day", [0, 2])
    @pytest.mark.parametrize("vantage", [0, 1])
    def test_probe_matches_batch_column(self, filtered_internet, day, vantage):
        internet = filtered_internet
        targets = AddressBatch.from_addresses(internet.all_bound_addresses()[::5])
        batch = internet.probe_batch(targets, day=day, rng=1, vantage=vantage)
        for j, protocol in enumerate(batch.protocols):
            scalar = np.array(
                [
                    internet.probe(a, protocol, day=day, vantage=vantage) is not None
                    for a in targets.to_addresses()
                ]
            )
            assert np.array_equal(scalar, batch.responsive[:, j])


@pytest.mark.parametrize("name", scenario_names())
def test_every_preset_is_parity_clean_with_degenerate_routing(name):
    """Each preset pinned to the single-homed graph passes all engine pairs.

    This is the regression contract of the migration: composing
    ``num_transit_ases = 0`` over any preset (including the routed ones)
    reproduces the historical flat resolution, and the batch and reference
    engines agree exactly on it.
    """
    scenario = get_scenario(name, scale="tiny").with_overrides(
        "degenerate-routing", {"num_transit_ases": 0}
    )
    report = run_differential(scenario, seed=2018, days=2)
    assert report.ok, "\n" + report.summary()
