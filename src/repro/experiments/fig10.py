"""Figure 10 and Table 8: rDNS as a data source.

Section 8 evaluates addresses obtained by walking the ip6.arpa tree:

* almost all rDNS addresses are new relative to the hitlist (11.1 M of 11.7 M);
* the AS/prefix distribution of rDNS addresses is at least as balanced as the
  hitlist's (Figure 10), so adding them does not bias the hitlist;
* rDNS addresses respond slightly better to ICMP and slightly worse to
  HTTP(S) than the hitlist (the population is server/infrastructure heavy);
* Table 8 -- the top responding ASes are hosting/service providers, and the
  responding population shows few SLAAC addresses and low IID hamming weights
  (i.e. not clients).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.comparison import OverlapStats, overlap_stats
from repro.core.bias import as_distribution, group_counts, prefix_distribution
from repro.experiments.context import ExperimentContext
from repro.netmodel.services import ALL_PROTOCOLS, Protocol
from repro.probing.zmap import ZMapScanner
from repro.sources.rdns import RDNSSource


@dataclass(slots=True)
class Fig10Result:
    """rDNS input/response characteristics vs the hitlist."""

    overlap: OverlapStats
    hitlist_as_curve: list[float]
    hitlist_prefix_curve: list[float]
    rdns_as_curve: list[float]
    rdns_prefix_curve: list[float]
    rdns_response_rates: Mapping[Protocol, float]
    hitlist_response_rates: Mapping[Protocol, float]
    top_input_ases: list[tuple[str, float]]
    top_icmp_ases: list[tuple[str, float]]
    top_tcp80_ases: list[tuple[str, float]]
    rdns_slaac_share: float
    rdns_low_hamming_share: float
    unrouted_filtered: int

    @property
    def mostly_new(self) -> bool:
        return self.overlap.share_new_in_b > 0.7

    @property
    def rdns_no_more_concentrated(self) -> bool:
        """Adding rDNS would not worsen AS-level bias."""
        if not self.rdns_as_curve or not self.hitlist_as_curve:
            return False
        return self.rdns_as_curve[0] <= self.hitlist_as_curve[0] + 0.05

    @property
    def rdns_is_server_population(self) -> bool:
        return self.rdns_slaac_share < 0.25 and self.rdns_low_hamming_share > 0.4


def run(ctx: ExperimentContext, rdns_scale: float = 0.4) -> Fig10Result:
    """Build the rDNS source, probe it, and compare against the hitlist."""
    target_size = max(200, int(ctx.config.hitlist_target * rdns_scale))
    rdns = RDNSSource(ctx.internet, target_size=target_size, seed=ctx.config.seed ^ 0xD45, runup_days=ctx.config.runup_days)
    rdns_all = list(rdns.snapshot())
    rdns_routed = rdns.routed_snapshot()
    # Filter addresses in aliased prefixes, as the paper does before probing.
    rdns_targets = [a for a in rdns_routed if not ctx.apd_result.is_aliased(a)]

    scanner = ZMapScanner(ctx.internet, seed=ctx.config.seed ^ 0xD46)
    sweep = scanner.sweep(rdns_targets, ALL_PROTOCOLS, day=0)
    rdns_rates = {p: r.response_rate for p, r in sweep.items()}
    hitlist_targets = ctx.non_aliased_addresses
    hitlist_rates = {
        p: (len(result.responsive) / len(hitlist_targets) if hitlist_targets else 0.0)
        for p, result in ctx.day0_sweep.items()
    }

    def top_ases(addresses, limit=5):
        counts = group_counts(addresses, ctx.internet.asn_of)
        total = sum(counts.values()) or 1
        return [
            (ctx.internet.registry.name_of(asn), count / total)
            for asn, count in counts.most_common(limit)
        ]

    icmp_responders = sorted(sweep[Protocol.ICMP].responsive, key=lambda a: a.value)
    tcp80_responders = sorted(sweep[Protocol.TCP80].responsive, key=lambda a: a.value)
    responders_any = set()
    for result in sweep.values():
        responders_any |= result.responsive
    slaac_share = (
        sum(1 for a in responders_any if a.is_slaac_eui64) / len(responders_any)
        if responders_any
        else 0.0
    )
    low_hamming = (
        sum(1 for a in responders_any if a.iid_hamming_weight <= 6) / len(responders_any)
        if responders_any
        else 0.0
    )

    return Fig10Result(
        overlap=overlap_stats(ctx.hitlist.addresses, rdns_all),
        hitlist_as_curve=as_distribution(ctx.hitlist.addresses, ctx.internet),
        hitlist_prefix_curve=prefix_distribution(ctx.hitlist.addresses, ctx.internet),
        rdns_as_curve=as_distribution(rdns_routed, ctx.internet),
        rdns_prefix_curve=prefix_distribution(rdns_routed, ctx.internet),
        rdns_response_rates=rdns_rates,
        hitlist_response_rates=hitlist_rates,
        top_input_ases=top_ases(rdns_routed),
        top_icmp_ases=top_ases(icmp_responders),
        top_tcp80_ases=top_ases(tcp80_responders),
        rdns_slaac_share=slaac_share,
        rdns_low_hamming_share=low_hamming,
        unrouted_filtered=len(rdns_all) - len(rdns_routed),
    )


def format_table(result: Fig10Result) -> str:
    """Summarise Figure 10 and Table 8."""
    lines = [
        f"rDNS addresses: {result.overlap.size_b:,} "
        f"({result.overlap.share_new_in_b:.1%} new vs hitlist, "
        f"{result.unrouted_filtered:,} unrouted filtered)",
        f"top-AS share: hitlist {result.hitlist_as_curve[0]:.1%} vs rDNS {result.rdns_as_curve[0]:.1%}",
        "response rates (rDNS vs hitlist):",
    ]
    for protocol in ALL_PROTOCOLS:
        lines.append(
            f"  {protocol.value:<7} {result.rdns_response_rates.get(protocol, 0):6.1%} vs "
            f"{result.hitlist_response_rates.get(protocol, 0):6.1%}"
        )
    lines.append("Table 8 -- top rDNS ASes (input | ICMP | TCP/80):")
    for i in range(5):
        def cell(rows, idx):
            return f"{rows[idx][0]} {rows[idx][1]:.1%}" if idx < len(rows) else "-"

        lines.append(
            f"  {i + 1}: {cell(result.top_input_ases, i):<28} | "
            f"{cell(result.top_icmp_ases, i):<28} | {cell(result.top_tcp80_ases, i)}"
        )
    lines.append(
        f"responding rDNS population: SLAAC {result.rdns_slaac_share:.1%}, "
        f"IID hamming weight <= 6: {result.rdns_low_hamming_share:.1%}"
    )
    return "\n".join(lines)
