"""Benchmark / regeneration harness for Figure 7 (cross-protocol responsiveness)."""

from benchmarks.conftest import run_once
from repro.experiments import fig7
from repro.netmodel.services import Protocol


def test_bench_fig7(benchmark, ctx):
    result = run_once(benchmark, lambda: fig7.run(ctx))
    print("\n" + fig7.format_table(result))
    # Anything responsive answers ICMPv6 with high probability (paper: >= 89 %).
    assert result.icmp_given_any_responsive > 0.85
    assert result.icmp_dominates
    # QUIC responders almost always also serve HTTPS; the reverse is weaker.
    assert result.quic_implies_https
    assert result.https_to_quic_weaker
    # HTTPS responders usually also serve HTTP (paper: 91 %).
    if result.counts[Protocol.TCP443] > 50:
        assert result.probability(Protocol.TCP80, Protocol.TCP443) > 0.7
