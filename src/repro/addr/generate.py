"""Address generation helpers.

The aliased-prefix detection of Section 5.1 probes 16 pseudo-random addresses
per prefix, one inside each 4-bit *fan-out* subprefix (Table 3).  This module
implements that fan-out generation plus plain pseudo-random address sampling
inside a prefix, both driven by an explicit :class:`random.Random` so that
daily scans are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

import numpy as np

from repro.addr.address import BITS, IPv6Address
from repro.addr.batch import AddressBatch
from repro.addr.prefix import IPv6Prefix, parse_prefix

#: Number of fan-out probes used by multi-level APD (one per nybble value).
FANOUT = 16


def random_address_in_prefix(
    prefix: "IPv6Prefix | str", rng: random.Random
) -> IPv6Address:
    """A pseudo-random address uniformly drawn from *prefix*."""
    prefix = parse_prefix(prefix)
    host_bits = BITS - prefix.length
    offset = rng.getrandbits(host_bits) if host_bits else 0
    return IPv6Address(prefix.network | offset)


def random_addresses_in_prefix(
    prefix: "IPv6Prefix | str", count: int, rng: random.Random, unique: bool = True
) -> list[IPv6Address]:
    """*count* pseudo-random addresses inside *prefix*.

    With ``unique=True`` (the default) the result contains no duplicates as
    long as the prefix is large enough to supply them.
    """
    prefix = parse_prefix(prefix)
    if unique and count > prefix.num_addresses:
        raise ValueError(
            f"cannot draw {count} unique addresses from {prefix} "
            f"({prefix.num_addresses} available)"
        )
    result: list[IPv6Address] = []
    seen: set[int] = set()
    while len(result) < count:
        addr = random_address_in_prefix(prefix, rng)
        if unique:
            if addr.value in seen:
                continue
            seen.add(addr.value)
        result.append(addr)
    return result


def fanout_targets(
    prefix: "IPv6Prefix | str", rng: random.Random, fanout: int = FANOUT
) -> list[IPv6Address]:
    """Pseudo-random APD targets, one per 4-bit subprefix of *prefix*.

    For a prefix of length ``L`` this enumerates the 16 subprefixes of length
    ``L+4`` (``prefix:[0-f]...``) and draws one pseudo-random address in each,
    exactly as illustrated in Table 3 of the paper.  Enforcing one probe per
    subprefix guarantees that probes are spread evenly over the more specific
    space, so partially aliased prefixes are not misclassified.

    Prefixes longer than 124 bits cannot fan out by a full nybble; for those
    the remaining host bits are enumerated instead (at most 16 values anyway).
    """
    prefix = parse_prefix(prefix)
    if fanout != FANOUT:
        raise ValueError("the paper's APD uses a fixed fan-out of 16 probes")
    sub_length = min(prefix.length + 4, BITS)
    count = 1 << (sub_length - prefix.length)
    targets: list[IPv6Address] = []
    for index in range(count):
        sub = prefix.nth_subnet(sub_length, index)
        targets.append(random_address_in_prefix(sub, rng))
    return targets


def spread_offsets(prefix: "IPv6Prefix | str", count: int) -> list[IPv6Address]:
    """*count* addresses evenly spread across *prefix* (deterministic).

    Useful for building deterministic probe sets in tests and benchmarks.
    """
    prefix = parse_prefix(prefix)
    if count <= 0:
        return []
    count = min(count, prefix.num_addresses)
    step = prefix.num_addresses // count
    return [IPv6Address(prefix.network + i * step) for i in range(count)]


def dedupe(addresses: Iterable[IPv6Address]) -> list[IPv6Address]:
    """Remove duplicate addresses while preserving first-seen order."""
    seen: set[int] = set()
    unique: list[IPv6Address] = []
    for addr in addresses:
        if addr.value not in seen:
            seen.add(addr.value)
            unique.append(addr)
    return unique


def sample_capped(
    addresses: Sequence[IPv6Address], cap: int, rng: random.Random
) -> list[IPv6Address]:
    """A random sample of at most *cap* addresses (Section 7.1's 100 k cap).

    If the population is not larger than the cap it is returned unchanged
    (as a list copy), otherwise a uniform sample without replacement is drawn.
    """
    if cap < 0:
        raise ValueError("cap must be non-negative")
    if len(addresses) <= cap:
        return list(addresses)
    return rng.sample(list(addresses), cap)


def sample_capped_batch(
    batch: AddressBatch, cap: int, rng: random.Random
) -> AddressBatch:
    """Batch counterpart of :func:`sample_capped`, bit-identical per seed.

    ``random.Random.sample`` selects by *index*, so sampling ``range(n)`` and
    taking those rows reproduces exactly the addresses (and order) the scalar
    path would draw from the equivalent address list.
    """
    if cap < 0:
        raise ValueError("cap must be non-negative")
    if len(batch) <= cap:
        return batch
    indices = rng.sample(range(len(batch)), cap)
    return batch.take(np.asarray(indices, dtype=np.int64))


def synthetic_mixed_batch(
    count: int,
    num_prefixes: int,
    seed: int,
    counter_modulus: int = 512,
    round_robin: bool = False,
) -> AddressBatch:
    """A synthetic hitlist batch over ``num_prefixes`` /32s with mixed schemes.

    The lower half of the prefixes uses small counter IIDs, the upper half
    random IIDs — the two addressing styles the Section 4 entropy clustering
    must tell apart.  Used by the clustering parity tests and benchmarks so
    both exercise the same data shape.  ``round_robin`` fills the prefixes
    with exactly equal sizes; the default assigns prefixes randomly.
    """
    rng = np.random.default_rng(seed)
    if round_robin:
        prefix_index = np.arange(count, dtype=np.uint64) % np.uint64(num_prefixes)
    else:
        prefix_index = rng.integers(0, num_prefixes, count).astype(np.uint64)
    hi = (
        (np.uint64(0x2001) << np.uint64(48))
        | (prefix_index << np.uint64(32))
        | rng.integers(0, 2**32, count, dtype=np.uint64)
    )
    lo = rng.integers(0, 2**64 - 1, count, dtype=np.uint64, endpoint=True)
    counter_style = prefix_index < np.uint64(max(1, num_prefixes // 2))
    lo[counter_style] = (
        np.arange(count, dtype=np.uint64) % np.uint64(counter_modulus)
    )[counter_style]
    return AddressBatch(hi, lo)
