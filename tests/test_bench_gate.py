"""Tests for scripts/check_bench_regression.py (the CI benchmark gate).

The gate compares the newest BENCH_*.json history record against the
trailing median of the prior records on every higher-is-better metric
(``speedup``, ``*_per_sec``); these tests pin the pass/fail boundary, the
minimum-history arming rule, and the exit-code contract on synthetic
histories so the checked-in benchmark files never influence the outcome.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_bench_regression", REPO_ROOT / "scripts" / "check_bench_regression.py"
)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def write_history(tmp_path, name, records):
    path = tmp_path / f"BENCH_{name}.json"
    path.write_text(json.dumps({"benchmark": name, "history": records}))
    return path


def record(**metrics):
    return {"timestamp": "2026-01-01T00:00:00", "git_sha": "abc1234", **metrics}


def test_steady_history_passes(tmp_path):
    path = write_history(
        tmp_path,
        "steady",
        [record(speedup=10.0), record(speedup=11.0), record(speedup=10.5)],
    )
    assert gate.main([str(path)]) == 0


def test_large_drop_fails(tmp_path):
    # Trailing median 10.0; the newest 6.0 is a 40% drop (> 30% threshold).
    path = write_history(
        tmp_path,
        "regressed",
        [record(speedup=10.0), record(speedup=10.0), record(speedup=6.0)],
    )
    assert gate.main([str(path)]) == 1


def test_drop_inside_threshold_passes(tmp_path):
    # 25% below the trailing median: inside the default 30% allowance.
    path = write_history(
        tmp_path,
        "noisy",
        [record(speedup=10.0), record(speedup=10.0), record(speedup=7.5)],
    )
    assert gate.main([str(path)]) == 0


def test_boundary_is_strict(tmp_path):
    # Exactly the floor (30% drop) still passes; the gate fires strictly below.
    path = write_history(
        tmp_path,
        "edge",
        [record(speedup=10.0), record(speedup=10.0), record(speedup=7.0)],
    )
    assert gate.main([str(path)]) == 0


def test_per_sec_metrics_are_gated(tmp_path):
    path = write_history(
        tmp_path,
        "throughput",
        [
            record(point_queries_per_sec=1000.0),
            record(point_queries_per_sec=1000.0),
            record(point_queries_per_sec=100.0),
        ],
    )
    assert gate.main([str(path)]) == 1


def test_lower_is_better_metrics_are_ignored(tmp_path):
    # Latency rising 10x must not trip a gate built for higher-is-better.
    path = write_history(
        tmp_path,
        "latency",
        [
            record(speedup=10.0, p99_latency_us=5.0),
            record(speedup=10.0, p99_latency_us=5.0),
            record(speedup=10.0, p99_latency_us=50.0),
        ],
    )
    assert gate.main([str(path)]) == 0


def test_short_history_is_skipped_not_failed(tmp_path):
    path = write_history(
        tmp_path, "young", [record(speedup=10.0), record(speedup=1.0)]
    )
    assert gate.main([str(path)]) == 0


def test_median_absorbs_one_outlier_baseline(tmp_path):
    # One absurd historic record must not raise the bar: the median of
    # (10, 10, 10, 100) is 10, so a new 9.0 passes.
    path = write_history(
        tmp_path,
        "outlier",
        [
            record(speedup=10.0),
            record(speedup=10.0),
            record(speedup=100.0),
            record(speedup=10.0),
            record(speedup=9.0),
        ],
    )
    assert gate.main([str(path)]) == 0


def test_custom_threshold(tmp_path):
    path = write_history(
        tmp_path,
        "strict",
        [record(speedup=10.0), record(speedup=10.0), record(speedup=8.0)],
    )
    assert gate.main([str(path)]) == 0
    assert gate.main(["--threshold", "0.1", str(path)]) == 1


def test_malformed_history_is_usage_error(tmp_path):
    path = tmp_path / "BENCH_broken.json"
    path.write_text("{not json")
    assert gate.main([str(path)]) == 2
    path.write_text(json.dumps({"benchmark": "x"}))  # no history list
    assert gate.main([str(path)]) == 2


def test_gated_metrics_selection():
    metrics = gate.gated_metrics(
        {
            "speedup": 3.5,
            "addresses_per_sec": 100.0,
            "p99_latency_us": 9.0,
            "batch_seconds": 1.2,
            "git_sha": "abc",
            "prefixes": 100,
            "ok": True,
        }
    )
    assert metrics == {"speedup": 3.5, "addresses_per_sec": 100.0}


def test_checked_in_histories_are_well_formed():
    """Every committed BENCH_*.json must parse into the gated shape."""
    paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    assert paths, "expected committed benchmark histories"
    for path in paths:
        name, history = gate.load_history(path)
        assert name and history
        assert gate.gated_metrics(history[-1]), f"{path} has no gated metrics"


def test_threshold_validation():
    with pytest.raises(SystemExit):
        gate.main(["--threshold", "1.5"])
    with pytest.raises(SystemExit):
        gate.main(["--min-history", "1"])
