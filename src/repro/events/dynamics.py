"""Sub-day network dynamics: token buckets, prefix rotation, probe waves.

:class:`NetworkDynamics` owns the mutable between-and-within-day state that
the immutable :class:`~repro.netmodel.internet.SimulatedInternet` cannot
carry: deterministic token-bucket ICMP rate limiters (per rate-limited
prefix, per anomaly region, per transit pool), DHCPv6/prefix-rotation churn
events that re-home eyeball hosts mid-scan, and the
:class:`~repro.events.scheduler.EventScheduler` that drives both.  One
instance belongs to one scanning service -- the reference and batch engines
each build their own, identically seeded, so exact cross-engine parity
holds by construction.

Wave admission
--------------

Scan days split into timestamped probe waves.  At each wave start,
:meth:`NetworkDynamics.begin_wave` runs the scheduler up to the wave's
timestamp (firing any pending rotation events) and charges the wave's ICMP
arrivals against the token buckets *once*, in sorted address order
("lowest addresses win" -- an order-independent rule, which is what lets
the scalar engine's shuffled probe loop and the batch engine's array pass
agree exactly).  Limiters compose serially -- transit pool, then
rate-limited prefix, then anomaly region -- and a probe dropped upstream
never charges a downstream bucket.  With ``competing_scanners > 0`` each
bucket is pre-charged with the synthetic rivals' arrivals ahead of ours.

Prefix rotation
---------------

Rotation is a pure per-(host, day) hash: an eligible eyeball CPE/client
host rotates on a given day with probability ``prefix_rotation_rate``, at a
deterministic fractional time.  From that moment its old bound addresses go
dark for the rest of the day (sources are assumed to re-learn current
addresses overnight, so darkness resets at the next ``begin_day``) and a
fresh address inside the same announced prefix answers instead -- the
mid-scan churn the residential-broadband literature documents.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.addr.batch import AddressBatch, find128
from repro.addr.generate import random_address_in_prefix
from repro.events.scheduler import EventScheduler
from repro.events.tokenbucket import TokenBucket
from repro.netmodel.asregistry import ASCategory
from repro.netmodel.services import HostRole

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.addr.address import IPv6Address
    from repro.netmodel.host import Host
    from repro.netmodel.internet import SimulatedInternet

_LO_MASK = (1 << 64) - 1
_MASK64 = (1 << 64) - 1
_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 0xBF58476D1CE4E5B9
_MIX3 = 0x94D049BB133111EB

#: Salts separating the independent per-(host, day) hash streams.
_SALT_ROTATES = 0x0A
_SALT_WHEN = 0x0B

_EMPTY_U64 = np.zeros(0, dtype=np.uint64)


def _hash01(ids: np.ndarray, day: int, seed: int, salt: int) -> np.ndarray:
    """Uniform [0, 1) draws, a pure function of (id, day, seed, salt).

    Same splitmix-style mixer as the routing layer's churn hash, so both
    engines -- and any chunked re-evaluation -- agree bit for bit.
    """
    mix = ((day + 1) * _MIX2 + (seed & 0xFFFFFFFF) + salt * _MIX3) & _MASK64
    h = ids.astype(np.uint64) * np.uint64(_MIX1)
    h += np.uint64(mix)
    h ^= h >> np.uint64(31)
    h *= np.uint64(_MIX3)
    return (h >> np.uint64(40)).astype(np.float64) / float(1 << 24)


class WaveAdmission:
    """One probe wave's view of the dynamics state.

    Carries the wave timestamp, the precomputed ICMP token-bucket admission
    over the wave's targets (sorted address order), and lookups into the
    day's rotation state (dark hosts, re-homed addresses).  Both probe
    engines consult the same instance, so their outcomes cannot drift.
    """

    __slots__ = (
        "day",
        "time",
        "buckets_active",
        "has_dark",
        "has_rehomed",
        "_hi",
        "_lo",
        "_admitted",
        "_re_active",
        "_dyn",
    )

    def __init__(self, dynamics: "NetworkDynamics", day: int, time: float):
        self.day = day
        self.time = float(time)
        self._dyn = dynamics
        self.buckets_active = False
        self._hi = _EMPTY_U64
        self._lo = _EMPTY_U64
        self._admitted = np.zeros(0, dtype=bool)
        dark = dynamics._dark
        self.has_dark = dark is not None and bool(dark.any())
        if dynamics._re_time.size:
            self._re_active = dynamics._re_time <= self.time
            self.has_rehomed = bool(self._re_active.any())
        else:
            self._re_active = np.zeros(0, dtype=bool)
            self.has_rehomed = False

    # -- token-bucket admission -------------------------------------------------

    def admitted_for(self, targets: AddressBatch) -> np.ndarray:
        """Per-target ICMP admission (True where the buckets let it through).

        Targets outside the wave default to admitted: admission is only
        defined over the wave the buckets were charged for.
        """
        pos = find128(self._hi, self._lo, targets.hi, targets.lo)
        return np.where(pos >= 0, self._admitted[np.maximum(pos, 0)], True)

    def admitted_value(self, value: int) -> bool:
        """Scalar counterpart of :meth:`admitted_for` (one address value)."""
        pos = find128(
            self._hi,
            self._lo,
            np.asarray([value >> 64], dtype=np.uint64),
            np.asarray([value & _LO_MASK], dtype=np.uint64),
        )
        p = int(pos[0])
        return True if p < 0 else bool(self._admitted[p])

    # -- rotation darkness ------------------------------------------------------

    def is_dark(self, host_id: int) -> bool:
        """Has this host rotated away from its bound addresses by now?"""
        return self.has_dark and bool(self._dyn._dark[host_id])

    def dark_of(self, host_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_dark` over an array of host ids."""
        return self._dyn._dark[host_ids]

    # -- re-homed addresses -----------------------------------------------------

    def rehome_positions(self, targets: AddressBatch) -> np.ndarray:
        """Index into the day's re-home table per target, -1 where none active."""
        dyn = self._dyn
        pos = find128(dyn._re_hi, dyn._re_lo, targets.hi, targets.lo)
        return np.where((pos >= 0) & self._re_active[np.maximum(pos, 0)], pos, -1)

    @property
    def rehome_services(self) -> np.ndarray:
        """Service bitmask per re-home table row (internet bit assignment)."""
        return self._dyn._re_services

    def rehome_online(self, day: int, rows: np.ndarray) -> np.ndarray:
        """Online state of the re-homed hosts at *rows* on *day*."""
        dyn = self._dyn
        return np.fromiter(
            (dyn._re_hosts[r].stability.is_online(day) for r in rows.tolist()),
            dtype=bool,
            count=int(rows.size),
        )

    def rehomed_host(self, value: int) -> "Optional[Host]":
        """The host answering on a re-homed address value, if one is active."""
        if not self.has_rehomed:
            return None
        dyn = self._dyn
        pos = find128(
            dyn._re_hi,
            dyn._re_lo,
            np.asarray([value >> 64], dtype=np.uint64),
            np.asarray([value & _LO_MASK], dtype=np.uint64),
        )
        p = int(pos[0])
        if p < 0 or not self._re_active[p]:
            return None
        return dyn._re_hosts[p]


class NetworkDynamics:
    """Per-service sub-day dynamics over one simulated Internet."""

    def __init__(
        self,
        internet: "SimulatedInternet",
        *,
        waves_per_day: int = 1,
        bucket_capacity: float = 0.0,
        bucket_refill_per_day: float = 0.0,
        rotation_rate: float = 0.0,
        competing_scanners: int = 0,
        seed: int = 0,
    ):
        self.internet = internet
        self.waves_per_day = max(1, int(waves_per_day))
        self.bucket_capacity = max(0.0, float(bucket_capacity))
        self.bucket_refill_per_day = max(0.0, float(bucket_refill_per_day))
        self.rotation_rate = max(0.0, float(rotation_rate))
        self.competing_scanners = max(0, int(competing_scanners))
        self.seed = int(seed)
        self.scheduler = EventScheduler()
        self._index = internet._ensure_batch_index()
        # --- token buckets: one per rate-limited domain, scaled by its limit.
        cap, refill = self.bucket_capacity, self.bucket_refill_per_day
        self._trie_buckets: list[TokenBucket] = []
        self._region_buckets: dict[int, TokenBucket] = {}
        self._transit_buckets: dict[tuple[int, int], TokenBucket] = {}
        if cap > 0.0:
            self._trie_buckets = [
                TokenBucket(cap * value, refill * value)
                for value in self._index.limit_values.tolist()
            ]
            for row, region in enumerate(internet.aliased_regions):
                if region.icmp_rate_limit is not None:
                    limit = region.icmp_rate_limit
                    self._region_buckets[row] = TokenBucket(cap * limit, refill * limit)
            routing = internet.routing
            if routing.has_rate_limit:
                for vantage in range(len(routing.vantage_asns)):
                    for asn, allowance in routing.transit_allowances(vantage).items():
                        self._transit_buckets[(vantage, asn)] = TokenBucket(
                            cap * allowance, refill * allowance
                        )
        self.buckets_active = bool(
            self._trie_buckets or self._region_buckets or self._transit_buckets
        )
        # --- rotation churn: eligible eyeball CPE/client hosts.
        self._eligible_hosts: list = []
        self._dark: Optional[np.ndarray] = None
        if self.rotation_rate > 0.0:
            eyeball = {
                d.asn.number
                for d in internet.registry
                if d.category is ASCategory.EYEBALL_ISP
            }
            self._eligible_hosts = [
                h
                for h in internet.hosts
                if h.role in (HostRole.CPE, HostRole.CLIENT) and h.asn in eyeball
            ]
            self._dark = np.zeros(internet.host_id_count, dtype=bool)
        self._eligible_ids = np.fromiter(
            (h.host_id for h in self._eligible_hosts),
            dtype=np.uint64,
            count=len(self._eligible_hosts),
        )
        # --- per-day re-home table (rebuilt by begin_day).
        self._current_day: Optional[int] = None
        self._re_hi = _EMPTY_U64
        self._re_lo = _EMPTY_U64
        self._re_time = np.zeros(0, dtype=float)
        self._re_services = np.zeros(0, dtype=np.int64)
        self._re_hosts: list = []

    @classmethod
    def from_config(
        cls, internet: "SimulatedInternet", seed: int = 0
    ) -> "Optional[NetworkDynamics]":
        """Dynamics for a service, or None when every sub-day knob is default.

        Returning None for the whole-day, zero-event configuration is the
        degenerate-case guarantee: no scheduler is built, no code path
        changes, behaviour stays bit-identical to the day-granular model.
        """
        cfg = internet.config
        if (
            cfg.waves_per_day <= 1
            and cfg.prefix_rotation_rate <= 0.0
            and cfg.icmp_bucket_capacity <= 0.0
        ):
            return None
        return cls(
            internet,
            waves_per_day=cfg.waves_per_day,
            bucket_capacity=cfg.icmp_bucket_capacity,
            bucket_refill_per_day=cfg.icmp_bucket_refill_per_day,
            rotation_rate=cfg.prefix_rotation_rate,
            competing_scanners=cfg.competing_scanners,
            seed=seed,
        )

    @property
    def active(self) -> bool:
        """Does this instance change anything over the day-granular model?"""
        return (
            self.waves_per_day > 1 or self.buckets_active or self.rotation_rate > 0.0
        )

    def wave_time(self, day: int, wave: int, phase: float = 0.5) -> float:
        """Timestamp of wave *wave* of *day* (phase 0.5 = mid-slot).

        With one wave per day and the default phase this lands on noon --
        the historical scalar probe's default time of day.
        """
        return float(day) + (wave + phase) / self.waves_per_day

    # -- day lifecycle ----------------------------------------------------------

    def begin_day(self, day: int) -> None:
        """Enter *day*: reset rotation darkness and schedule the day's churn.

        Idempotent per day.  Rotation is a pure per-(host, day) hash, so the
        reference and batch engines -- each owning their own instance --
        schedule identical event streams.
        """
        day = int(day)
        if self._current_day == day:
            return
        self._current_day = day
        if self._dark is not None:
            self._dark[:] = False
        self._re_hi = _EMPTY_U64
        self._re_lo = _EMPTY_U64
        self._re_time = np.zeros(0, dtype=float)
        self._re_services = np.zeros(0, dtype=np.int64)
        self._re_hosts = []
        if self.rotation_rate <= 0.0 or self._eligible_ids.size == 0:
            return
        draws = _hash01(self._eligible_ids, day, self.seed, _SALT_ROTATES)
        rotating = np.nonzero(draws < self.rotation_rate)[0]
        if rotating.size == 0:
            return
        fracs = _hash01(self._eligible_ids[rotating], day, self.seed, _SALT_WHEN)
        from repro.netmodel.internet import _service_mask

        entries: list[tuple[int, float, object]] = []
        for i, frac in zip(rotating.tolist(), fracs.tolist()):
            host = self._eligible_hosts[i]
            when = day + frac
            self.scheduler.schedule(when, self._make_rotation(host.host_id))
            announcement = self.internet.bgp.lookup(host.primary_address)
            if announcement is None:
                continue  # unrouted host: it goes dark but nothing re-homes
            rng = random.Random(
                (self.seed & _MASK64) ^ (host.host_id * _MIX1) ^ ((day + 1) * _MIX2)
            )
            new_address = random_address_in_prefix(announcement.prefix, rng)
            entries.append((new_address.value, when, host))
        if not entries:
            return
        entries.sort(key=lambda e: e[0])
        n = len(entries)
        self._re_hi = np.fromiter((v >> 64 for v, _, _ in entries), np.uint64, n)
        self._re_lo = np.fromiter((v & _LO_MASK for v, _, _ in entries), np.uint64, n)
        self._re_time = np.fromiter((t for _, t, _ in entries), float, n)
        self._re_services = np.fromiter(
            (_service_mask(h.services) for _, _, h in entries), np.int64, n
        )
        self._re_hosts = [h for _, _, h in entries]

    def _make_rotation(self, host_id: int):
        def fire() -> None:
            self._dark[host_id] = True

        return fire

    def rehomed(self) -> "list[tuple[Host, IPv6Address, float]]":
        """Ground truth: the current day's (host, new address, time) rotations."""
        from repro.addr.address import IPv6Address

        values = (self._re_hi.astype(object) << 64) | self._re_lo.astype(object)
        return [
            (host, IPv6Address(int(value)), float(when))
            for host, value, when in zip(
                self._re_hosts, values, self._re_time.tolist()
            )
        ]

    # -- wave admission ---------------------------------------------------------

    def begin_wave(
        self,
        day: int,
        time: float,
        targets: "AddressBatch | Iterable",
        vantage: Optional[int] = None,
    ) -> WaveAdmission:
        """Advance the clock to *time* and admit the wave's ICMP arrivals."""
        if not isinstance(targets, AddressBatch):
            targets = AddressBatch.from_addresses(targets)
        self.begin_day(day)
        self.scheduler.run_until(time)
        wave = WaveAdmission(self, int(day), time)
        if self.buckets_active and len(targets):
            self._admit(wave, int(day), float(time), targets, vantage)
        return wave

    def _admit(
        self,
        wave: WaveAdmission,
        day: int,
        time: float,
        targets: AddressBatch,
        vantage: Optional[int],
    ) -> None:
        """Charge the buckets for this wave, lowest addresses first."""
        index = self._index
        order = targets.argsort()
        srt = targets.take(order)
        n = len(srt)
        admitted = np.ones(n, dtype=bool)
        ann = index.bgp.lookup_indices(srt)
        arrives = ann >= 0  # unrouted probes never reach any limiter
        routing = self.internet.routing
        if self._transit_buckets and routing.active:
            dest = np.where(arrives, index.ann_dest_row[np.maximum(ann, 0)], np.int64(-1))
            upstreams = routing.day_upstreams(day, vantage)
            pools = np.where(dest >= 0, upstreams[np.maximum(dest, 0)], np.int64(-1))
            v = routing.resolve_vantage(vantage)
            self._charge(
                admitted, arrives, pools, lambda asn: self._transit_buckets.get((v, asn)), time
            )
        if self._trie_buckets:
            keys = index.limits.lookup_indices(srt)
            self._charge(
                admitted,
                arrives,
                keys,
                lambda k: self._trie_buckets[k],
                time,
            )
        if self._region_buckets:
            keys = index.regions.lookup_indices(srt)
            self._charge(admitted, arrives, keys, self._region_buckets.get, time)
        wave.buckets_active = True
        wave._hi = srt.hi
        wave._lo = srt.lo
        wave._admitted = admitted

    def _charge(self, admitted, arrives, keys, bucket_of, time: float) -> None:
        """Charge one limiter family: per bucket, grant lowest addresses first.

        ``keys`` maps each sorted target to a bucket id (-1 = outside the
        family); only still-admitted arrivals charge a bucket, so serially
        composed limiters never bill a probe an upstream one already shed.
        """
        live = arrives & admitted & (keys >= 0)
        if not live.any():
            return
        for key in np.unique(keys[live]).tolist():
            bucket = bucket_of(key)
            if bucket is None:
                continue
            idx = np.nonzero(live & (keys == key))[0]
            if self.competing_scanners:
                bucket.grant(time, self.competing_scanners * int(idx.size))
            granted = bucket.grant(time, int(idx.size))
            if granted < idx.size:
                admitted[idx[granted:]] = False

    # -- traceroute support -----------------------------------------------------

    def transit_try_consume(self, vantage: int, asn: int, time: float) -> bool:
        """One TTL-exceeded reply's claim on a transit pool (True = granted)."""
        bucket = self._transit_buckets.get((vantage, asn))
        if bucket is None:
            return True
        if self.competing_scanners:
            bucket.grant(time, self.competing_scanners)
        return bucket.try_consume(time)
